//! The discrete-event simulation engine.
//!
//! The engine advances slot-granular time, delivers job arrivals, executes
//! task copies, enforces the Map→Reduce precedence constraint, implements
//! first-copy-wins cloning semantics (sibling copies are cancelled the moment
//! one copy of a task finishes) and invokes the [`Scheduler`] whenever the
//! cluster state changes.
//!
//! # Streaming workload seam
//!
//! Jobs are *pulled* from a [`JobSource`] rather than copied in up front: a
//! pull-ahead cursor holds exactly one not-yet-admitted job, its arrival
//! competes with the event-queue head for the next decision instant, and
//! every pending job arriving at the chosen instant is admitted into the
//! same delivery batch — reproducing the all-arrivals-queued-up-front
//! trajectory bit for bit (same-slot arrivals sort by dense job index
//! either way). Completed jobs release their task storage right after their
//! [`JobRecord`] is captured, so memory is bounded by the peak *alive
//! window* ([`SimOutcome::peak_resident_jobs`]), not by the workload size —
//! this is what lets 100k+-job [`mapreduce_workload::StreamingGenerator`]
//! runs complete without ever materialising a [`Trace`].
//!
//! Event compression: the scheduler is only woken when an arrival or a
//! completion happened, or on an explicit periodic wakeup (requested either
//! by the scheduler itself through [`Scheduler::wakeup_interval`] or globally
//! through [`SimConfig::periodic_wakeup`]). Between such instants nothing in
//! the model can change, so this is equivalent to the per-slot loop of the
//! paper while being fast enough for 12 000-machine traces.
//!
//! # Event path
//!
//! The arrival/finish plumbing lives in [`crate::events`]: a slot-granular
//! calendar queue with `O(1)` amortized push/pop. Each decision instant is
//! delivered as one **batch** ([`EventQueue::drain_due`]) — the instant's
//! bucket is sorted once and handed over wholesale instead of a heap pop per
//! event, and a task whose clones tie at one slot is finalized exactly once
//! (the first completion in `(kind, allocation-sequence)` order wins; its
//! siblings fail the `O(1)` liveness check). Copy records live in a
//! run-level [`CopyArena`] indexed by [`CopyId`], so resolving a completion
//! is a single slice index, and cancelled copies *retract* their queued
//! finish events ([`EventQueue::retract`]) instead of leaving stale heap
//! entries behind. Completed jobs hand their copy slots back to the arena's
//! free-list, so — like the job table — copy memory is bounded by the peak
//! alive window ([`SimOutcome::peak_copy_slots`]) rather than the run's
//! total copy count.
//! Early-launched reduce copies are tracked on a per-job waiting list
//! ([`crate::state::JobState::waiting_copies`]), so Map-phase completion
//! activates exactly the waiting copies instead of rescanning every reduce
//! task.
//!
//! The engine owns the job table, the machine budget and the incrementally
//! maintained [`AliveIndex`] from which each scheduler-facing
//! [`ClusterState`] snapshot is built in `O(1)`.

use crate::config::{FaultClass, FaultPlan, SimConfig, StragglerModel};
use crate::copy::{CopyArena, CopyId, CopyPhase};
use crate::error::SimError;
use crate::events::{next_decision, Event, EventQueue};
use crate::result::{JobRecord, RunTelemetry, SimOutcome};
use crate::state::IndexDemands;
use crate::state::{Action, AliveIndex, ClusterState, JobState, Scheduler, Slot};
use crate::telemetry::{
    CancelReason, CopyCancelled, CopyFinished, CopyLaunched, DecisionInstant, NoopObserver,
    SimObserver,
};
use mapreduce_support::channel::{spsc_channel, SpscSender};
use mapreduce_support::rng::{Rng, SimRng};
use mapreduce_workload::{JobSource, MaterializedSource, Phase, TaskId, Trace};
use std::fmt;
use std::time::Instant;

/// A single simulation run: one job source, one configuration, one
/// scheduler.
///
/// The workload side is a [`JobSource`] — jobs are *pulled* in arrival order
/// and admitted as they arrive, so a run never needs the whole workload
/// materialised at once. [`Simulation::new`] wraps an existing [`Trace`] in a
/// [`MaterializedSource`], which is bit-identical to the old
/// trace-vector path; [`Simulation::from_source`] accepts any source (a
/// [`mapreduce_workload::StreamingGenerator`], a converted Google CSV, …).
///
/// See the crate-level documentation for an end-to-end example.
pub struct Simulation {
    config: SimConfig,
    /// `Some` until [`Simulation::run`] consumes it — the source is taken
    /// out up front so it can move onto the pipeline's producer thread (or
    /// into the serial feed) without borrowing the engine.
    source: Option<Box<dyn JobSource>>,
    /// Runtime state of the admitted jobs, indexed by dense job id. Grows as
    /// the source is consumed; completed jobs stay (records and scalar state
    /// remain addressable) but their task storage is released.
    jobs: Vec<JobState>,
}

impl fmt::Debug for Simulation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Simulation")
            .field("config", &self.config)
            .field(
                "source",
                &self.source.as_ref().map_or("<consumed>", |s| s.name()),
            )
            .field(
                "total_jobs",
                &self.source.as_ref().map_or(0, |s| s.total_jobs()),
            )
            .field("admitted_jobs", &self.jobs.len())
            .finish()
    }
}

/// Mutable per-run bookkeeping shared by the event handlers.
#[derive(Debug, Default)]
struct RunStats {
    available: usize,
    busy_machine_slots: u64,
    completed_jobs: usize,
    scheduler_invocations: u64,
    makespan: Slot,
    pending_arrivals: usize,
    /// Jobs admitted from the source and not yet completed-and-released.
    resident_jobs: usize,
    /// High-water mark of `resident_jobs`.
    peak_resident_jobs: usize,
    /// Decision instants processed (event batches delivered), including the
    /// final one that completes the run without reaching the scheduler.
    decision_instants: u64,
    /// Largest ranked-candidate prefix any decision materialised.
    ranked_prefix_len_max: usize,
}

/// Per-run mutable context: stats, the copy arena and reusable scratch
/// buffers, grouped so the handlers stay within sane arities and the hot
/// loop never allocates for event delivery or cancellation.
#[derive(Debug, Default)]
struct RunCtx {
    stats: RunStats,
    arena: CopyArena,
    /// Scratch for [`Simulation::cancel_copies`]: `(progress, id)` of the
    /// task's active copies, reused across calls.
    cancel_scratch: Vec<(f64, CopyId)>,
    /// Scratch for [`Simulation::activate_waiting_reduce_copies`]: swapped
    /// with each job's waiting list so the allocation is recycled.
    waiting_scratch: Vec<(u32, CopyId)>,
    /// Completion records, captured the moment each job completes (its task
    /// storage is released right after); sorted into job-id order at the end.
    records: Vec<JobRecord>,
    /// Machine-identity state, present only when the run has a non-empty
    /// [`FaultPlan`]. Fault-free runs keep the fungible machine-count model
    /// and never touch it, which is what makes the empty-plan trajectory
    /// bit-identical to a build without the subsystem.
    pool: Option<MachinePool>,
}

impl RunCtx {
    /// Returns the machine of a departing copy (finished or cancelled while
    /// its machine is in service) to the idle pool. No-op without a fault
    /// plan.
    fn release_machine(&mut self, cid: CopyId) {
        if let Some(pool) = &mut self.pool {
            pool.release(cid);
        }
    }
}

/// Stream salt for the fault-injection RNG: machine epochs draw from their
/// own xoshiro stream, so attaching a fault plan never perturbs the straggler
/// and clone-resampling draws of the main run RNG.
const FAULT_RNG_STREAM: u64 = 0xFA17_14F3_C7ED_5EED;

/// Runtime machine identities for fault injection, built from a
/// [`FaultPlan`].
///
/// The fault-free engine treats machines as a fungible count
/// (`RunStats::available`); killing the copies *resident on a specific
/// machine* requires identities. The pool pins every launched copy to a
/// machine and keeps the set of idle in-service machines as a LIFO free-list
/// with lazy stale-entry deletion: `enlisted[m]` is true iff machine `m` is
/// up **and** idle, entries whose flag went false (crashed while idle, or
/// superseded by a newer entry after a down/up cycle) are discarded at pop.
/// The invariant tying the two models together: the number of live free-list
/// entries always equals `RunStats::available`.
///
/// Fault epochs are sampled lazily — one pending [`Event::MachineDown`] /
/// [`Event::MachineUp`] per covered machine at any time, the next epoch drawn
/// when the current one fires — so a plan costs `O(classes)` to store and
/// `O(1)` per transition, and 100k-machine plans never materialise a
/// timeline.
#[derive(Debug)]
struct MachinePool {
    /// The plan's classes; class `k` covers machines
    /// `[class_start[k], class_start[k] + classes[k].machines)`.
    classes: Vec<FaultClass>,
    /// First machine index of each class, ascending.
    class_start: Vec<u32>,
    /// Copy currently occupying each machine (running or waiting), if any.
    resident: Vec<Option<CopyId>>,
    /// LIFO free-list of idle in-service machines, with lazy deletion.
    free: Vec<u32>,
    /// `enlisted[m]` ⟺ machine `m` is up and idle (its entry in `free` is
    /// live).
    enlisted: Vec<bool>,
    /// `down[m]` ⟺ machine `m` is crashed out of service.
    down: Vec<bool>,
    /// Number of machines currently down.
    num_down: usize,
    /// Slot at which each down machine crashed (valid while `down[m]`).
    down_since: Vec<Slot>,
    /// Workload multiplier for copies launched on each machine (1.0 = full
    /// speed; > 1.0 during a brown-out epoch).
    slow: Vec<f64>,
    /// Machine occupied by each copy-arena slot (valid while the copy is
    /// active; stale entries are overwritten on slot reuse).
    machine_of: Vec<u32>,
    /// Dedicated epoch-sampling stream (see [`FAULT_RNG_STREAM`]).
    rng: SimRng,
    /// Machine-slots of progress lost to fault kills.
    wasted_work: u64,
    /// Copies killed because their machine crashed.
    copies_killed: u64,
    /// Machine-slots of completed down epochs (still-open epochs are folded
    /// in by [`MachinePool::final_downtime`]).
    downtime: u64,
}

impl MachinePool {
    fn new(plan: &FaultPlan, num_machines: usize, seed: u64) -> Self {
        let mut class_start = Vec::with_capacity(plan.classes.len());
        let mut next = 0u32;
        for class in &plan.classes {
            class_start.push(next);
            next += class.machines as u32;
        }
        debug_assert!(next as usize <= num_machines, "plan validated by SimConfig");
        MachinePool {
            classes: plan.classes.clone(),
            class_start,
            resident: vec![None; num_machines],
            // LIFO pop yields machine 0 first: launches fill low indices
            // first, deterministically.
            free: (0..num_machines as u32).rev().collect(),
            enlisted: vec![true; num_machines],
            down: vec![false; num_machines],
            num_down: 0,
            down_since: vec![0; num_machines],
            slow: vec![1.0; num_machines],
            machine_of: Vec::new(),
            rng: SimRng::seed_from_u64(seed ^ FAULT_RNG_STREAM),
            wasted_work: 0,
            copies_killed: 0,
            downtime: 0,
        }
    }

    /// Queues the first failure/brown-out of every covered machine. Every
    /// machine starts the run in service at full speed.
    fn seed_events(&mut self, queue: &mut EventQueue) {
        for k in 0..self.classes.len() {
            let class = self.classes[k];
            let start = self.class_start[k];
            let crash = class.slowdown.is_none();
            for machine in start..start + class.machines as u32 {
                let at = self.sample_epoch(class.mean_up_slots);
                queue.push(Event::MachineDown { at, machine, crash });
            }
        }
    }

    /// One exponential epoch draw with the given mean, quantised to whole
    /// slots and at least 1 (a zero-length epoch would break the per-machine
    /// down/up alternation).
    fn sample_epoch(&mut self, mean: f64) -> Slot {
        let u = self.rng.gen_f64();
        let draw = -mean * (1.0 - u).ln();
        (draw.ceil() as Slot).max(1)
    }

    /// The fault class covering `machine` (only called for covered machines
    /// — uncovered ones never get fault events).
    fn class_of(&self, machine: u32) -> FaultClass {
        let k = self.class_start.partition_point(|&s| s <= machine) - 1;
        self.classes[k]
    }

    /// Pops the next idle in-service machine. The free-list invariant
    /// guarantees a live entry exists whenever `RunStats::available > 0`.
    fn acquire(&mut self) -> u32 {
        loop {
            let m = self
                .free
                .pop()
                .expect("free-list tracks the available count");
            if self.enlisted[m as usize] {
                self.enlisted[m as usize] = false;
                return m;
            }
        }
    }

    /// Pins a freshly launched copy to the machine it occupies.
    fn assign(&mut self, cid: CopyId, machine: u32) {
        let slot = cid.0 as usize;
        if self.machine_of.len() <= slot {
            self.machine_of.resize(slot + 1, 0);
        }
        self.machine_of[slot] = machine;
        debug_assert!(self.resident[machine as usize].is_none());
        self.resident[machine as usize] = Some(cid);
    }

    /// Returns a departing copy's machine to the idle pool. Only called for
    /// copies leaving through the normal finish/cancel paths — fault kills
    /// clear residency themselves and keep the machine out of service.
    fn release(&mut self, cid: CopyId) {
        let m = self.machine_of[cid.0 as usize] as usize;
        debug_assert_eq!(self.resident[m], Some(cid));
        debug_assert!(!self.down[m], "a crash would have killed this copy");
        self.resident[m] = None;
        self.free.push(m as u32);
        self.enlisted[m] = true;
    }

    /// Total down machine-slots, folding in the epochs still open at `end`.
    fn final_downtime(&self, end: Slot) -> u64 {
        let mut total = self.downtime;
        for m in 0..self.down.len() {
            if self.down[m] {
                total += end.saturating_sub(self.down_since[m]);
            }
        }
        total
    }
}

/// Pulls, validates and wraps the next job of the source. `index` is the
/// dense id the job must carry, `last_arrival` the arrival of its
/// predecessor.
fn pull_next(
    source: &mut dyn JobSource,
    index: usize,
    last_arrival: Slot,
    demands: IndexDemands,
) -> Result<Option<JobState>, SimError> {
    let Some(spec) = source.next_job() else {
        return Ok(None);
    };
    if spec.id.as_usize() != index {
        return Err(SimError::InvalidSourceJob {
            index,
            message: format!("expected dense job id {index}, got {}", spec.id),
        });
    }
    if spec.arrival < last_arrival {
        return Err(SimError::InvalidSourceJob {
            index,
            message: format!(
                "arrival {} behind predecessor arrival {last_arrival}",
                spec.arrival
            ),
        });
    }
    let mut job = JobState::new(spec);
    job.set_index_tracking(demands);
    Ok(Some(job))
}

/// Where the event loop gets its next validated job from: the source
/// directly (serial mode, the default oracle) or a bounded channel fed by a
/// producer thread (pipeline mode). Both yield the identical job stream —
/// validation errors included, since the producer sends them in-order after
/// every preceding job.
enum JobFeed {
    /// Pull + validate inline on the event-loop thread.
    Serial {
        source: Box<dyn JobSource>,
        demands: IndexDemands,
        next_index: usize,
        last_arrival: Slot,
    },
    /// Receive pre-validated jobs from the pipeline's producer thread.
    Piped {
        rx: mapreduce_support::channel::SpscReceiver<Result<JobState, SimError>>,
    },
}

impl JobFeed {
    fn serial(source: Box<dyn JobSource>, demands: IndexDemands) -> Self {
        JobFeed::Serial {
            source,
            demands,
            next_index: 0,
            last_arrival: 0,
        }
    }

    /// The next job of the stream, or `None` once the source is exhausted.
    fn next(&mut self) -> Result<Option<JobState>, SimError> {
        match self {
            JobFeed::Serial {
                source,
                demands,
                next_index,
                last_arrival,
            } => {
                let job = pull_next(source.as_mut(), *next_index, *last_arrival, *demands)?;
                if let Some(job) = &job {
                    *next_index += 1;
                    *last_arrival = job.arrival();
                }
                Ok(job)
            }
            JobFeed::Piped { rx } => match rx.recv() {
                None => Ok(None),
                Some(Ok(job)) => Ok(Some(job)),
                Some(Err(e)) => Err(e),
            },
        }
    }
}

/// In-flight bound of the pipeline channels: deep enough to decouple the
/// stages' burst patterns, small enough that backpressure (not memory) is
/// what holds back a ten-million-job source.
const PIPELINE_BUFFER: usize = 256;

/// Per-stage wall-clock accumulator ([`SimConfig::profile_stages`]). When
/// disabled, `begin` returns `None` and every lap is 0 — the hot loop pays a
/// branch, not a clock read.
#[derive(Debug, Default)]
struct StageClock {
    enabled: bool,
    source_ns: u64,
    events_ns: u64,
    decision_ns: u64,
    metrics_ns: u64,
}

impl StageClock {
    fn begin(&self) -> Option<Instant> {
        self.enabled.then(Instant::now)
    }

    fn lap(t0: Option<Instant>) -> u64 {
        t0.map_or(0, |t| t.elapsed().as_nanos() as u64)
    }
}

impl Simulation {
    /// Creates a simulation over the given trace.
    ///
    /// The trace is copied into an internal [`MaterializedSource`], so the
    /// caller keeps ownership of the original; the run is bit-identical to
    /// feeding the same trace through [`Simulation::from_source`].
    pub fn new(config: SimConfig, trace: &Trace) -> Self {
        Self::from_source(config, Box::new(MaterializedSource::from_trace(trace)))
    }

    /// Creates a simulation pulling its workload from an arbitrary
    /// [`JobSource`].
    pub fn from_source(config: SimConfig, source: Box<dyn JobSource>) -> Self {
        Simulation {
            config,
            source: Some(source),
            jobs: Vec::new(),
        }
    }

    /// The configuration of this simulation.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Runs the simulation to completion with the given scheduler.
    ///
    /// # Errors
    ///
    /// * [`SimError::NoMachines`] if the configuration has zero machines
    ///   (normally prevented by [`SimConfig::new`]).
    /// * [`SimError::SchedulerStalled`] if jobs remain but the scheduler
    ///   refuses to launch anything and nothing is running or arriving.
    /// * [`SimError::HorizonExceeded`] if [`SimConfig::max_slots`] is reached.
    /// * [`SimError::UnknownTask`] if the scheduler references a task outside
    ///   the trace.
    pub fn run(self, scheduler: &mut dyn Scheduler) -> Result<SimOutcome, SimError> {
        self.run_with_observer(scheduler, &mut NoopObserver)
    }

    /// Runs the simulation to completion with the given scheduler, streaming
    /// lifecycle events to `observer` (see [`crate::telemetry`]).
    ///
    /// The run loop is monomorphized over the observer type: [`NoopObserver`]
    /// compiles to the observer-free engine, and any observer receives facts
    /// strictly after the engine applied them, so the trajectory — and the
    /// returned [`SimOutcome`] — is bit-identical with or without one.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Simulation::run`].
    pub fn run_with_observer<O: SimObserver>(
        mut self,
        scheduler: &mut dyn Scheduler,
        observer: &mut O,
    ) -> Result<SimOutcome, SimError> {
        if self.config.num_machines == 0 {
            return Err(SimError::NoMachines);
        }
        let source = self.source.take().expect("a simulation runs exactly once");
        let total_jobs = source.total_jobs();
        // Maintain only the per-job indices this scheduler consumes; keeping
        // a sorted index current costs O(running width) per launch/finish,
        // which wide jobs turn into a real tax under schedulers that never
        // read it.
        let demands = scheduler.index_demands();
        if self.config.pipeline {
            self.run_pipelined(scheduler, source, demands, total_jobs, observer)
        } else {
            let mut feed = JobFeed::serial(source, demands);
            self.run_loop(scheduler, &mut feed, None, total_jobs, observer)
        }
    }

    /// Pipeline mode: the job producer and the record consumer run on their
    /// own scoped threads, talking to the event loop through bounded SPSC
    /// channels, so source synthesis/parsing and record folding overlap the
    /// decision path on multi-core hosts. The trajectory — and therefore the
    /// [`SimOutcome`] — is bit-identical to the serial path: the producer
    /// ships the exact in-order job stream `pull_next` yields (validation
    /// errors included), and the consumer re-establishes the job-id record
    /// order the serial path sorts into.
    ///
    /// Shutdown relies on the channels' disconnect semantics: an engine
    /// error drops the receiving feed, which fails the producer's next
    /// `send` and lets it exit instead of deadlocking on a full channel;
    /// dropping the record sender ends the consumer's stream.
    fn run_pipelined<O: SimObserver>(
        &mut self,
        scheduler: &mut dyn Scheduler,
        source: Box<dyn JobSource>,
        demands: IndexDemands,
        total_jobs: usize,
        observer: &mut O,
    ) -> Result<SimOutcome, SimError> {
        std::thread::scope(|scope| {
            let (job_tx, job_rx) = spsc_channel::<Result<JobState, SimError>>(PIPELINE_BUFFER);
            scope.spawn(move || {
                let mut feed = JobFeed::serial(source, demands);
                loop {
                    match feed.next() {
                        Ok(Some(job)) => {
                            if job_tx.send(Ok(job)).is_err() {
                                return; // engine stopped consuming (error path)
                            }
                        }
                        // Dropping the sender ends the stream; an error is
                        // delivered in-order and ends it too, exactly where
                        // the serial feed would have surfaced it.
                        Ok(None) => return,
                        Err(e) => {
                            let _ = job_tx.send(Err(e));
                            return;
                        }
                    }
                }
            });

            let (record_tx, record_rx) = spsc_channel::<JobRecord>(PIPELINE_BUFFER);
            let consumer = scope.spawn(move || {
                let mut records: Vec<JobRecord> = Vec::new();
                while let Some(record) = record_rx.recv() {
                    records.push(record);
                }
                // Records stream in completion order; outcomes report job-id
                // order (same sort the serial path runs).
                records.sort_by_key(|r| r.job);
                records
            });

            let mut feed = JobFeed::Piped { rx: job_rx };
            let result =
                self.run_loop(scheduler, &mut feed, Some(&record_tx), total_jobs, observer);
            // Wake both stages regardless of how the loop ended: the
            // consumer sees end-of-stream, a still-blocked producer sees a
            // gone receiver.
            drop(record_tx);
            drop(feed);
            let records = consumer.join().expect("record consumer panicked");
            result.map(|mut outcome| {
                outcome.replace_records(records);
                outcome
            })
        })
    }

    /// The event loop itself, shared verbatim by the serial and pipelined
    /// modes: jobs come from `feed`, completion records go to `record_tx`
    /// when given (pipeline mode) and into the locally sorted record vector
    /// otherwise.
    fn run_loop<O: SimObserver>(
        &mut self,
        scheduler: &mut dyn Scheduler,
        feed: &mut JobFeed,
        record_tx: Option<&SpscSender<JobRecord>>,
        total_jobs: usize,
        observer: &mut O,
    ) -> Result<SimOutcome, SimError> {
        let total_machines = self.config.num_machines;
        let mut rng = SimRng::seed_from_u64(self.config.seed);

        let mut queue = EventQueue::with_ring_bits(self.config.event_ring_bits);

        let mut alive = AliveIndex::new();
        if let Some(r) = scheduler.priority_r() {
            alive.enable_priority(r);
        }
        let mut clock = StageClock {
            enabled: self.config.profile_stages,
            ..StageClock::default()
        };
        let mut ctx = RunCtx {
            stats: RunStats {
                available: total_machines,
                pending_arrivals: total_jobs,
                ..RunStats::default()
            },
            ..RunCtx::default()
        };
        // Fault injection: build machine identities and queue the first
        // failure epoch of every covered machine. An empty plan skips all of
        // it — no pool, no events, no per-launch machine bookkeeping — so the
        // fault-free trajectory is bit-identical to a build without the
        // subsystem.
        if !self.config.fault_plan.is_empty() {
            let mut pool =
                MachinePool::new(&self.config.fault_plan, total_machines, self.config.seed);
            pool.seed_events(&mut queue);
            ctx.pool = Some(pool);
        }
        // Pull-ahead cursor on the feed: exactly one not-yet-admitted job
        // is held in `pending`; its arrival competes with the queue head for
        // the next decision instant, and once that instant is chosen every
        // pending job arriving at it is admitted (jobs vector + arrival
        // event) before the batch is drained — so same-slot arrivals land in
        // one batch, exactly as when all arrivals were queued up front.
        let t0 = clock.begin();
        let mut pending = feed.next()?;
        clock.source_ns += StageClock::lap(t0);
        let mut now: Slot = 0;
        // Reused across decision instants so the hot loop never allocates for
        // event delivery or scheduler decisions.
        let mut due: Vec<Event> = Vec::new();
        let mut actions: Vec<Action> = Vec::new();
        let mut newly_arrived = Vec::new();
        let mut newly_finished = Vec::new();
        let mut newly_unlaunched = Vec::new();

        let wakeup_every = match (scheduler.wakeup_interval(), self.config.periodic_wakeup) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (Some(a), None) => Some(a),
            (None, Some(b)) => Some(b),
            (None, None) => None,
        };

        while ctx.stats.completed_jobs < total_jobs {
            // ---- determine the next decision instant ----
            // Down machines are neither available nor running anything, so
            // they are subtracted before the idle test (fault-free runs keep
            // `up == total_machines` and the original expression).
            let up_machines = total_machines - ctx.pool.as_ref().map_or(0, |p| p.num_down);
            let running_anything = ctx.stats.available < up_machines;
            let next_wakeup = match wakeup_every {
                Some(k) if !alive.is_empty() && running_anything => Some(now + k),
                _ => None,
            };
            let head = match (queue.peek_slot(), pending.as_ref().map(|j| j.arrival())) {
                (Some(q), Some(a)) => Some(q.min(a)),
                (Some(q), None) => Some(q),
                (None, a) => a,
            };
            let next = match next_decision(head, next_wakeup) {
                Some((slot, _)) => slot.max(now),
                None => {
                    // Nothing can ever happen again yet jobs remain: the
                    // scheduler has stalled.
                    return Err(SimError::SchedulerStalled {
                        slot: now,
                        alive_jobs: alive.len(),
                    });
                }
            };
            now = next;
            if let Some(max_slots) = self.config.max_slots {
                if now > max_slots {
                    return Err(SimError::HorizonExceeded {
                        max_slots,
                        unfinished_jobs: total_jobs - ctx.stats.completed_jobs,
                    });
                }
            }

            // ---- admit every pending job arriving at this instant ----
            // The source yields non-decreasing arrivals, so the admission
            // frontier is exactly the pending jobs with arrival == now; their
            // arrival events join the batch drained below.
            let t0 = clock.begin();
            while pending.as_ref().is_some_and(|j| j.arrival() <= now) {
                let job = pending.take().expect("checked above");
                let idx = self.jobs.len();
                let arrival = job.arrival();
                queue.push(Event::JobArrival {
                    at: arrival,
                    job_index: idx,
                });
                self.jobs.push(job);
                ctx.stats.resident_jobs += 1;
                ctx.stats.peak_resident_jobs =
                    ctx.stats.peak_resident_jobs.max(ctx.stats.resident_jobs);
                pending = feed.next()?;
            }
            clock.source_ns += StageClock::lap(t0);

            ctx.stats.decision_instants += 1;

            // ---- deliver the instant's event batch ----
            // One drain per decision instant: the bucket is sorted once
            // (arrivals before completions, then sequence order) and handed
            // over wholesale. Same-slot clone ties cost one O(1) liveness
            // check each instead of re-running the finalization.
            let t0 = clock.begin();
            let metrics_before = clock.metrics_ns;
            newly_arrived.clear();
            newly_finished.clear();
            newly_unlaunched.clear();
            due.clear();
            queue.drain_due(now, &mut due);
            for &event in &due {
                match event {
                    Event::JobArrival { at, job_index } => {
                        let job = &mut self.jobs[job_index];
                        job.mark_arrived();
                        alive.insert(job_index, job);
                        ctx.stats.pending_arrivals -= 1;
                        newly_arrived.push(job.id());
                        observer.on_job_arrived(at, job.id());
                    }
                    Event::CopyFinish {
                        at,
                        copy,
                        task,
                        seq,
                    } => {
                        if let Some(finished) = self
                            .handle_copy_finish(task, copy, seq, at, &mut ctx, &mut queue, observer)
                        {
                            newly_finished.push(finished);
                            let job_idx = task.job.as_usize();
                            if task.phase == Phase::Map && self.jobs[job_idx].map_phase_complete() {
                                self.activate_waiting_reduce_copies(
                                    job_idx, at, &mut ctx, &mut queue,
                                );
                                // The job's unscheduled reduces just became
                                // launchable; keep the O(1) aggregate exact.
                                alive.note_map_phase_complete(job_idx, &self.jobs[job_idx]);
                            }
                            if self.jobs[job_idx].all_tasks_finished()
                                && !self.jobs[job_idx].is_complete()
                            {
                                self.jobs[job_idx].mark_complete(at);
                                ctx.stats.completed_jobs += 1;
                                ctx.stats.makespan = ctx.stats.makespan.max(at);
                                alive.remove(job_idx, &self.jobs[job_idx]);
                                // Capture the record now and release the
                                // job's task storage: memory stays bounded
                                // by the alive window, not the workload.
                                let job = &self.jobs[job_idx];
                                let tm = clock.begin();
                                let record = JobRecord {
                                    job: job.id(),
                                    weight: job.weight(),
                                    arrival: job.arrival(),
                                    completion: at,
                                    num_map_tasks: job.spec().num_map_tasks(),
                                    num_reduce_tasks: job.spec().num_reduce_tasks(),
                                    copies_launched: job.copies_launched(),
                                    true_workload: job.spec().true_total_workload(),
                                };
                                observer.on_job_completed(&record);
                                if let Some(tx) = record_tx {
                                    // A dead consumer only happens if it
                                    // panicked; the join below surfaces that.
                                    let _ = tx.send(record);
                                } else {
                                    ctx.records.push(record);
                                }
                                clock.metrics_ns += StageClock::lap(tm);
                                // Recycle the job's copy slots before the
                                // id lists are dropped: the arena, like the
                                // job table, stays bounded by the alive
                                // window. Every copy of a completed job has
                                // ended, and no queued event can finalize
                                // one again (task lookups fail and the
                                // sequence check rejects reused slots).
                                for phase in Phase::ALL {
                                    for task in job.tasks(phase) {
                                        for &cid in task.copies() {
                                            ctx.arena.free(cid);
                                        }
                                    }
                                }
                                self.jobs[job_idx].release_storage();
                                ctx.stats.resident_jobs -= 1;
                            }
                        }
                    }
                    Event::MachineUp { at, machine, crash } => {
                        self.handle_machine_up(machine, crash, at, &mut ctx, &mut queue);
                        observer.on_machine_up(at, machine, crash);
                    }
                    Event::MachineDown { at, machine, crash } => {
                        // The down epoch is reported before its consequences
                        // (fault-cancelled copies, task unlaunches) so trace
                        // consumers see cause before effect.
                        observer.on_machine_down(at, machine, crash);
                        if let Some(task) = self.handle_machine_down(
                            machine, crash, at, &mut ctx, &mut alive, &mut queue, observer,
                        ) {
                            newly_unlaunched.push(task);
                            observer.on_task_unlaunched(at, task);
                        }
                    }
                    Event::Wakeup { .. } => unreachable!("wakeups are never queued"),
                }
            }
            // Record capture runs inside the event loop but bills to the
            // metrics stage; subtract the nested laps so stages stay disjoint.
            clock.events_ns +=
                StageClock::lap(t0).saturating_sub(clock.metrics_ns - metrics_before);

            if ctx.stats.completed_jobs == total_jobs {
                break;
            }

            // ---- invoke the scheduler ----
            let t0 = clock.begin();
            ctx.stats.scheduler_invocations += 1;
            alive.flush_priority();
            actions.clear();
            let ranked_prefix = {
                // Recomputed here rather than reused from the loop top: the
                // event batch just drained may have taken machines down or
                // brought them back. Schedulers see only in-service capacity,
                // so every decision path prices in the reduced cluster.
                let up_machines = total_machines - ctx.pool.as_ref().map_or(0, |p| p.num_down);
                let state = ClusterState::from_index(
                    now,
                    up_machines,
                    ctx.stats.available,
                    &self.jobs,
                    &ctx.arena,
                    &alive,
                );
                for job in &newly_arrived {
                    scheduler.on_job_arrival(*job, &state);
                }
                for task in &newly_finished {
                    scheduler.on_task_finished(*task, &state);
                }
                for task in &newly_unlaunched {
                    scheduler.on_task_unlaunched(*task, &state);
                }
                // One run-level buffer, reused across decision instants: the
                // per-`schedule` Vec<Action> allocation is gone.
                scheduler.schedule_into(&state, &mut actions);
                let consumed = state.ranked_prefix_consumed();
                ctx.stats.ranked_prefix_len_max = ctx.stats.ranked_prefix_len_max.max(consumed);
                consumed
            };

            self.apply_actions(
                &actions, now, &mut ctx, &mut alive, &mut queue, &mut rng, observer,
            )?;
            let decision_lap = StageClock::lap(t0);
            clock.decision_ns += decision_lap;
            if O::ENABLED {
                let mut launch_actions = 0usize;
                let mut cancel_actions = 0usize;
                let mut copies_requested = 0usize;
                for action in &actions {
                    match *action {
                        Action::Launch { copies, .. } => {
                            launch_actions += 1;
                            copies_requested += copies;
                        }
                        Action::CancelCopies { .. } => cancel_actions += 1,
                    }
                }
                observer.on_decision_instant(DecisionInstant {
                    at: now,
                    launch_actions,
                    cancel_actions,
                    copies_requested,
                    ranked_prefix,
                    wall_ns: decision_lap,
                });
            }

            // ---- stall detection ----
            // If nothing is running, nothing will arrive, and jobs remain,
            // the scheduler will never be given a different state again.
            if ctx.stats.available == total_machines
                && ctx.stats.pending_arrivals == 0
                && !alive.is_empty()
            {
                return Err(SimError::SchedulerStalled {
                    slot: now,
                    alive_jobs: alive.len(),
                });
            }
        }

        // ---- collect records ----
        // Records were captured at completion time (completion order);
        // outcomes report them in job-id order. In pipelined mode the
        // consumer thread holds them instead — `run_pipelined` splices its
        // sorted batch in after the join.
        let t0 = clock.begin();
        let mut records = ctx.records;
        records.sort_by_key(|r| r.job);
        clock.metrics_ns += StageClock::lap(t0);

        let mut outcome = SimOutcome::new(
            scheduler.name().to_string(),
            total_machines,
            records,
            ctx.stats.makespan,
            ctx.stats.busy_machine_slots,
            ctx.arena.total_allocated() as usize,
            ctx.stats.scheduler_invocations,
            ctx.stats.peak_resident_jobs,
            ctx.arena.peak_slots(),
        );
        outcome.telemetry = RunTelemetry {
            decision_instants: ctx.stats.decision_instants,
            ranked_prefix_len_max: ctx.stats.ranked_prefix_len_max,
            stage_source_ns: clock.source_ns,
            stage_events_ns: clock.events_ns,
            stage_decision_ns: clock.decision_ns,
            stage_metrics_ns: clock.metrics_ns,
        };
        if let Some(pool) = &ctx.pool {
            outcome.wasted_work = pool.wasted_work;
            outcome.copies_killed_by_fault = pool.copies_killed;
            outcome.machine_downtime = pool.final_downtime(ctx.stats.makespan);
        }
        Ok(outcome)
    }

    /// Processes the completion of one copy. Returns `Some(task_id)` if the
    /// event was live and the task finished, `None` for stale events (the
    /// liveness check is `O(1)`: one arena index).
    #[allow(clippy::too_many_arguments)]
    fn handle_copy_finish<O: SimObserver>(
        &mut self,
        task_id: TaskId,
        copy_id: CopyId,
        seq: u64,
        slot: Slot,
        ctx: &mut RunCtx,
        queue: &mut EventQueue,
        observer: &mut O,
    ) -> Option<TaskId> {
        let job = self.jobs.get_mut(task_id.job.as_usize())?;
        let task = job.task_mut(task_id.phase, task_id.index)?;
        if task.is_finished() {
            // A sibling that tied at this slot already finalized the task.
            return None;
        }
        {
            let copy = ctx.arena.get(copy_id);
            // The sequence check rejects events whose copy slot was freed
            // and reallocated since the event was queued (only possible for
            // stale entries of completed jobs — caught by the task lookup
            // above too — but cheap enough to keep as a second line).
            if copy.seq() != seq
                || copy.phase() != CopyPhase::Running
                || copy.finish_slot() != Some(slot)
            {
                return None;
            }
        }
        // First-copy-wins: the winner finishes; every sibling still holding a
        // machine is cancelled, and running siblings retract their queued
        // finish events so the calendar queue can drop them wholesale.
        let mut released = 0usize;
        let mut busy = 0u64;
        let mut waiting_cancelled = 0usize;
        let copies_of_task = task.copies().len();
        for &cid in task.copies() {
            let copy = ctx.arena.get(cid);
            match copy.phase() {
                CopyPhase::Running if cid == copy_id => {
                    let launched_at = copy.launched_at();
                    busy += slot.saturating_sub(launched_at);
                    released += 1;
                    ctx.arena.finish(cid, slot);
                    ctx.release_machine(cid);
                    observer.on_copy_finished(CopyFinished {
                        at: slot,
                        copy: cid,
                        task: task_id,
                        launched_at,
                        copies_of_task,
                    });
                }
                CopyPhase::Running => {
                    let finish = copy.finish_slot();
                    let copy_seq = copy.seq();
                    let launched_at = copy.launched_at();
                    busy += slot.saturating_sub(launched_at);
                    released += 1;
                    ctx.arena.cancel(cid, slot);
                    ctx.release_machine(cid);
                    if let Some(finish) = finish {
                        queue.retract(finish, copy_seq);
                    }
                    observer.on_copy_cancelled(CopyCancelled {
                        at: slot,
                        copy: cid,
                        task: task_id,
                        launched_at,
                        reason: CancelReason::SiblingFinished,
                    });
                }
                CopyPhase::WaitingForMapPhase => {
                    let launched_at = copy.launched_at();
                    busy += slot.saturating_sub(launched_at);
                    released += 1;
                    waiting_cancelled += 1;
                    ctx.arena.cancel(cid, slot);
                    ctx.release_machine(cid);
                    observer.on_copy_cancelled(CopyCancelled {
                        at: slot,
                        copy: cid,
                        task: task_id,
                        launched_at,
                        reason: CancelReason::SiblingFinished,
                    });
                }
                _ => {}
            }
        }
        let duration = slot.saturating_sub(task.first_launched_at().unwrap_or(slot));
        task.note_copies_released(released);
        task.mark_finished(slot);
        job.note_task_finished(task_id.phase, task_id.index, duration);
        job.note_copy_released(released);
        if waiting_cancelled > 0 {
            job.note_waiting_cancelled(waiting_cancelled);
        }
        ctx.stats.available += released;
        ctx.stats.busy_machine_slots += busy;
        Some(task_id)
    }

    /// A machine's up epoch ends. Crash classes take the machine out of
    /// service, killing the resident copy (if any); brown-out classes leave
    /// it in service at degraded speed. Either way the next recovery is
    /// queued, so each covered machine alternates down/up forever at `O(1)`
    /// memory. Returns the task that fell back to the unscheduled pool, if
    /// the crash killed its last copy, so the run loop can notify the
    /// scheduler's [`Scheduler::on_task_unlaunched`] hook.
    #[allow(clippy::too_many_arguments)]
    fn handle_machine_down<O: SimObserver>(
        &mut self,
        machine: u32,
        crash: bool,
        now: Slot,
        ctx: &mut RunCtx,
        alive: &mut AliveIndex,
        queue: &mut EventQueue,
        observer: &mut O,
    ) -> Option<TaskId> {
        let victim = {
            let pool = ctx
                .pool
                .as_mut()
                .expect("machine events are only queued when a fault plan exists");
            let class = pool.class_of(machine);
            let down_for = pool.sample_epoch(class.mean_down_slots);
            queue.push(Event::MachineUp {
                at: now + down_for,
                machine,
                crash,
            });
            if !crash {
                // Brown-out: the machine keeps serving, but copies launched
                // on it during the epoch carry the class's workload
                // multiplier. Copies already running are unaffected — the
                // model degrades placement, it does not rewrite in-flight
                // finish times.
                pool.slow[machine as usize] = class.slowdown.unwrap_or(1.0);
                return None;
            }
            let m = machine as usize;
            debug_assert!(!pool.down[m], "down/up epochs alternate per machine");
            pool.down[m] = true;
            pool.num_down += 1;
            pool.down_since[m] = now;
            pool.resident[m].take()
        };
        match victim {
            // Work lost, not jobs lost: the resident copy dies and its task
            // re-enters the unscheduled pool if no sibling survives.
            Some(cid) => self.kill_copy(cid, now, ctx, alive, queue, observer),
            None => {
                // Idle machine: its free-list entry goes stale (lazy
                // deletion) and the cluster loses one available slot.
                let pool = ctx.pool.as_mut().expect("fault plan checked above");
                debug_assert!(pool.enlisted[machine as usize]);
                pool.enlisted[machine as usize] = false;
                ctx.stats.available -= 1;
                None
            }
        }
    }

    /// A machine's down (or brown-out) epoch ends: crash classes re-enter
    /// service empty and idle, brown-out classes return to full speed. The
    /// next failure epoch is queued immediately.
    fn handle_machine_up(
        &mut self,
        machine: u32,
        crash: bool,
        now: Slot,
        ctx: &mut RunCtx,
        queue: &mut EventQueue,
    ) {
        let pool = ctx
            .pool
            .as_mut()
            .expect("machine events are only queued when a fault plan exists");
        let class = pool.class_of(machine);
        let up_for = pool.sample_epoch(class.mean_up_slots);
        queue.push(Event::MachineDown {
            at: now + up_for,
            machine,
            crash,
        });
        let m = machine as usize;
        if !crash {
            pool.slow[m] = 1.0;
            return;
        }
        debug_assert!(pool.down[m], "recovery of a machine that is not down");
        pool.down[m] = false;
        pool.num_down -= 1;
        pool.downtime += now.saturating_sub(pool.down_since[m]);
        debug_assert!(
            pool.resident[m].is_none(),
            "the crash killed the resident copy"
        );
        pool.free.push(machine);
        pool.enlisted[m] = true;
        ctx.stats.available += 1;
    }

    /// Kills the copy resident on a crashing machine: progress is wasted, the
    /// queued finish event is retracted, and if no sibling copy survives the
    /// task returns to the unscheduled pool so a later decision instant
    /// re-executes it. The machine is *not* returned to the available count —
    /// it goes straight from busy to down. Returns the task's id when its
    /// last copy just died and it re-entered the unscheduled pool.
    fn kill_copy<O: SimObserver>(
        &mut self,
        cid: CopyId,
        now: Slot,
        ctx: &mut RunCtx,
        alive: &mut AliveIndex,
        queue: &mut EventQueue,
        observer: &mut O,
    ) -> Option<TaskId> {
        let (task_id, phase_was, finish, seq, launched_at) = {
            let copy = ctx.arena.get(cid);
            (
                copy.task(),
                copy.phase(),
                copy.finish_slot(),
                copy.seq(),
                copy.launched_at(),
            )
        };
        let elapsed = now.saturating_sub(launched_at);
        ctx.arena.cancel(cid, now);
        if phase_was == CopyPhase::Running {
            if let Some(finish) = finish {
                queue.retract(finish, seq);
            }
        }
        {
            let pool = ctx
                .pool
                .as_mut()
                .expect("kill_copy only runs under a fault plan");
            pool.wasted_work += elapsed;
            pool.copies_killed += 1;
        }
        // The machine really was occupied until the crash instant, so the
        // lost progress still counts toward utilisation — `wasted_work`
        // carries the distinction.
        ctx.stats.busy_machine_slots += elapsed;
        observer.on_copy_cancelled(CopyCancelled {
            at: now,
            copy: cid,
            task: task_id,
            launched_at,
            reason: CancelReason::Fault,
        });

        let job_idx = task_id.job.as_usize();
        let job = &mut self.jobs[job_idx];
        let task = job
            .task_mut(task_id.phase, task_id.index)
            .expect("an active copy's task storage is never released");
        task.note_copies_released(1);
        // Recompute the task's surviving-copy picture: the killed copy may
        // have carried the earliest finish, or been the last copy standing.
        let mut still_active = 0usize;
        let mut new_finish: Option<Slot> = None;
        for &other in task.copies() {
            let copy = ctx.arena.get(other);
            if copy.is_active() {
                still_active += 1;
                if let Some(f) = copy.finish_slot() {
                    new_finish = Some(new_finish.map_or(f, |cur| cur.min(f)));
                }
            }
        }
        job.refresh_running_finish(task_id.phase, task_id.index, new_finish);
        job.note_copy_released(1);
        if phase_was == CopyPhase::WaitingForMapPhase {
            job.note_waiting_cancelled(1);
        }
        if still_active == 0 {
            // Every copy of the task is gone: work lost, not the job. The
            // task rejoins the unscheduled pool and the aggregate indexes
            // re-admit it, so the next decision instant can relaunch it.
            job.note_task_unlaunched(task_id.phase, task_id.index);
            alive.note_task_unlaunched(job_idx, &self.jobs[job_idx]);
            Some(task_id)
        } else {
            None
        }
    }

    /// Starts processing of reduce copies that were launched before the Map
    /// phase of their job had completed, consuming the job's waiting-copy
    /// list — `O(waiting copies)`, with an `O(1)` early-out when nothing
    /// waits. Completion order is determined by the queue's `(slot, kind,
    /// copy-id)` key, so the drain order of the list is immaterial.
    fn activate_waiting_reduce_copies(
        &mut self,
        job_idx: usize,
        slot: Slot,
        ctx: &mut RunCtx,
        queue: &mut EventQueue,
    ) {
        let job = &mut self.jobs[job_idx];
        if job.waiting_copies() == 0 {
            return;
        }
        let RunCtx {
            arena,
            waiting_scratch,
            ..
        } = ctx;
        job.take_waiting_reduce(waiting_scratch);
        for &(index, cid) in waiting_scratch.iter() {
            let (phase, task, copy_seq) = {
                let copy = arena.get(cid);
                (copy.phase(), copy.task(), copy.seq())
            };
            if phase != CopyPhase::WaitingForMapPhase {
                // Cancelled while waiting; its list entry went stale.
                continue;
            }
            let finish = arena.start_running(cid, slot);
            queue.push(Event::CopyFinish {
                at: finish,
                copy: cid,
                task,
                seq: copy_seq,
            });
            job.note_copy_running(Phase::Reduce, index, finish);
        }
    }

    /// Applies the scheduler's actions, clipping launches to the available
    /// machines and the per-task copy cap.
    #[allow(clippy::too_many_arguments)]
    fn apply_actions<O: SimObserver>(
        &mut self,
        actions: &[Action],
        now: Slot,
        ctx: &mut RunCtx,
        alive: &mut AliveIndex,
        queue: &mut EventQueue,
        rng: &mut SimRng,
        observer: &mut O,
    ) -> Result<(), SimError> {
        for action in actions {
            match *action {
                Action::Launch { task, copies } => {
                    self.launch_copies(task, copies, now, ctx, alive, queue, rng, observer)?;
                }
                Action::CancelCopies { task, keep } => {
                    self.cancel_copies(task, keep, now, ctx, queue, observer)?;
                }
            }
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn launch_copies<O: SimObserver>(
        &mut self,
        task_id: TaskId,
        requested: usize,
        now: Slot,
        ctx: &mut RunCtx,
        alive: &mut AliveIndex,
        queue: &mut EventQueue,
        rng: &mut SimRng,
        observer: &mut O,
    ) -> Result<(), SimError> {
        let job_idx = task_id.job.as_usize();
        if job_idx >= self.jobs.len() {
            return Err(SimError::UnknownTask(task_id));
        }
        let max_per_task = self.config.max_copies_per_task;
        let speed = self.config.machine_speed;
        let resample = self.config.resample_clone_workloads;
        let straggler = self.config.straggler;

        let job = &mut self.jobs[job_idx];
        // Ignore launches for jobs that have not arrived or already finished
        // (their task storage is released): the scheduler may be acting on a
        // stale view. The liveness check must precede the task probe.
        if !job.is_alive() {
            return Ok(());
        }
        // One probe of the task yields everything the validation and the
        // launch loop need.
        let (active_now, task_finished, mut first_launch) =
            match job.task(task_id.phase, task_id.index) {
                Some(task) => (
                    task.active_copies(),
                    task.is_finished(),
                    task.is_unscheduled(),
                ),
                None => return Err(SimError::UnknownTask(task_id)),
            };
        if task_finished {
            return Ok(());
        }
        let map_phase_complete = job.map_phase_complete();
        let spec_workload = job
            .spec()
            .tasks(task_id.phase)
            .get(task_id.index as usize)
            .map(|t| t.workload)
            .ok_or(SimError::UnknownTask(task_id))?;
        // Cloned lazily: only clone launches with resampling ever consult the
        // distribution, and first launches (the overwhelming majority) never
        // pay for it.
        let mut distribution: Option<Option<mapreduce_workload::DurationDistribution>> = None;

        let capacity_cap = max_per_task.saturating_sub(active_now);
        let n = requested.min(ctx.stats.available).min(capacity_cap);
        if n == 0 {
            return Ok(());
        }

        for _ in 0..n {
            // Workload of this copy: the original sample for the first copy,
            // an i.i.d. resample for clones (if enabled and a distribution is
            // attached to the job).
            let mut workload = if first_launch {
                spec_workload
            } else if resample {
                let dist = distribution
                    .get_or_insert_with(|| job.spec().distribution(task_id.phase).cloned());
                match dist {
                    Some(dist) => dist.sample(rng),
                    None => spec_workload,
                }
            } else {
                spec_workload
            };
            if let StragglerModel::MachineSlowdown {
                probability,
                factor,
            } = straggler
            {
                if rng.gen_bool(probability.clamp(0.0, 1.0)) {
                    workload *= factor;
                }
            }
            // Fault runs pin every copy to a concrete machine; a machine in
            // a brown-out epoch inflates the copy's workload at launch time.
            // `n <= available` guarantees a live free-list entry each turn.
            let machine = ctx.pool.as_mut().map(|p| p.acquire());
            if let Some(m) = machine {
                let mult = ctx.pool.as_ref().expect("pool acquired above").slow[m as usize];
                if mult != 1.0 {
                    workload *= mult;
                }
            }
            let duration = ((workload / speed).ceil() as Slot).max(1);

            // The allocators hand back the id *and* the sequence the queued
            // event needs, so no read-back of the fresh record.
            let (copy_id, running_finish) = if task_id.phase == Phase::Reduce && !map_phase_complete
            {
                let (copy_id, _) = ctx.arena.alloc_waiting(task_id, now, duration);
                job.note_copy_waiting(task_id.index, copy_id);
                (copy_id, None)
            } else {
                let finish = now + duration;
                let (copy_id, seq) = ctx.arena.alloc_running(task_id, now, duration);
                queue.push(Event::CopyFinish {
                    at: finish,
                    copy: copy_id,
                    task: task_id,
                    seq,
                });
                (copy_id, Some(finish))
            };

            if let Some(m) = machine {
                ctx.pool
                    .as_mut()
                    .expect("pool acquired above")
                    .assign(copy_id, m);
            }
            observer.on_copy_launched(CopyLaunched {
                at: now,
                copy: copy_id,
                task: task_id,
                clone: !first_launch,
                expected_finish: running_finish,
            });
            if first_launch {
                job.note_first_launch(task_id.phase, task_id.index);
                alive.note_first_launch(job_idx, job);
                first_launch = false;
            }
            job.note_copy_launched();
            if let Some(task) = job.task_mut(task_id.phase, task_id.index) {
                task.add_copy(copy_id, now);
            }
            if let Some(finish) = running_finish {
                job.note_copy_running(task_id.phase, task_id.index, finish);
            }
            ctx.stats.available -= 1;
        }
        Ok(())
    }

    /// Cancels all but the `keep` most-progressed active copies of a task in
    /// a single pass over its copy-id slice, reusing the run-level scratch
    /// buffer (no per-call allocation, no membership rescan).
    fn cancel_copies<O: SimObserver>(
        &mut self,
        task_id: TaskId,
        keep: usize,
        now: Slot,
        ctx: &mut RunCtx,
        queue: &mut EventQueue,
        observer: &mut O,
    ) -> Result<(), SimError> {
        let job_idx = task_id.job.as_usize();
        if job_idx >= self.jobs.len() {
            return Err(SimError::UnknownTask(task_id));
        }
        let RunCtx {
            stats,
            arena,
            cancel_scratch,
            pool,
            ..
        } = ctx;
        let job = &mut self.jobs[job_idx];
        if job.is_complete() {
            // Completed jobs released their task storage; a cancellation
            // for one is a stale no-op, like cancelling a finished task.
            return Ok(());
        }
        let task = match job.task_mut(task_id.phase, task_id.index) {
            Some(t) => t,
            None => return Err(SimError::UnknownTask(task_id)),
        };
        if task.is_finished() {
            return Ok(());
        }
        // Order active copies by progress (descending, stable so ties keep
        // launch order) and cancel the excess in the same pass that computes
        // the surviving earliest finish.
        cancel_scratch.clear();
        for &cid in task.copies() {
            let copy = arena.get(cid);
            if copy.is_active() {
                cancel_scratch.push((copy.progress(now), cid));
            }
        }
        if cancel_scratch.len() <= keep {
            return Ok(());
        }
        cancel_scratch.sort_by(|a, b| b.0.total_cmp(&a.0));
        let mut released = 0usize;
        let mut busy = 0u64;
        let mut waiting_cancelled = 0usize;
        let mut new_finish: Option<Slot> = None;
        for (pos, &(_, cid)) in cancel_scratch.iter().enumerate() {
            if pos < keep {
                if let Some(finish) = arena.get(cid).finish_slot() {
                    new_finish = Some(new_finish.map_or(finish, |f: Slot| f.min(finish)));
                }
                continue;
            }
            let (finish, copy_seq, launched_at) = {
                let copy = arena.get(cid);
                if copy.phase() == CopyPhase::WaitingForMapPhase {
                    waiting_cancelled += 1;
                }
                busy += now.saturating_sub(copy.launched_at());
                (copy.finish_slot(), copy.seq(), copy.launched_at())
            };
            arena.cancel(cid, now);
            released += 1;
            if let Some(pool) = pool.as_mut() {
                pool.release(cid);
            }
            if let Some(finish) = finish {
                queue.retract(finish, copy_seq);
            }
            observer.on_copy_cancelled(CopyCancelled {
                at: now,
                copy: cid,
                task: task_id,
                launched_at,
                reason: CancelReason::Scheduler,
            });
        }
        task.note_copies_released(released);
        job.refresh_running_finish(task_id.phase, task_id.index, new_finish);
        job.note_copy_released(released);
        if waiting_cancelled > 0 {
            job.note_waiting_cancelled(waiting_cancelled);
        }
        stats.available += released;
        stats.busy_machine_slots += busy;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedulers::{GreedyFifo, MaxCloneScheduler, NoopScheduler};
    use mapreduce_workload::{JobId, JobSpecBuilder, Trace, WorkloadBuilder};

    fn two_job_trace() -> Trace {
        let j0 = JobSpecBuilder::new(JobId::new(0))
            .arrival(0)
            .weight(1.0)
            .map_tasks_from_workloads(&[10.0, 10.0])
            .reduce_tasks_from_workloads(&[5.0])
            .build();
        let j1 = JobSpecBuilder::new(JobId::new(1))
            .arrival(3)
            .weight(2.0)
            .map_tasks_from_workloads(&[4.0])
            .build();
        Trace::new(vec![j0, j1]).unwrap()
    }

    #[test]
    fn fifo_completes_all_jobs() {
        let trace = two_job_trace();
        let outcome = Simulation::new(SimConfig::new(4), &trace)
            .run(&mut GreedyFifo::new())
            .unwrap();
        assert_eq!(outcome.records().len(), 2);
        for r in outcome.records() {
            assert!(r.completion > r.arrival);
        }
        // Job 0: maps finish at 10 (both run in parallel), reduce runs 10..15.
        let r0 = outcome.record(JobId::new(0)).unwrap();
        assert_eq!(r0.completion, 15);
        assert_eq!(r0.flowtime(), 15);
        // Job 1: arrives at 3, single 4-slot map, machines are free.
        let r1 = outcome.record(JobId::new(1)).unwrap();
        assert_eq!(r1.completion, 7);
        assert_eq!(r1.flowtime(), 4);
    }

    #[test]
    fn reduce_respects_map_precedence_even_if_scheduled_early() {
        // One machine-rich cluster: a FIFO scheduler launches the reduce task
        // immediately, but it must not finish before map phase + its own
        // duration.
        let trace = two_job_trace();
        let outcome = Simulation::new(SimConfig::new(100), &trace)
            .run(&mut GreedyFifo::new())
            .unwrap();
        let r0 = outcome.record(JobId::new(0)).unwrap();
        // Map phase ends at slot 10; reduce needs 5 more slots.
        assert_eq!(r0.completion, 15);
    }

    #[test]
    fn machines_are_a_hard_limit() {
        // 1 machine, two map tasks of 10 slots each plus a 5-slot reduce:
        // everything must serialise → completion at 25.
        let trace = Trace::new(vec![JobSpecBuilder::new(JobId::new(0))
            .map_tasks_from_workloads(&[10.0, 10.0])
            .reduce_tasks_from_workloads(&[5.0])
            .build()])
        .unwrap();
        let outcome = Simulation::new(SimConfig::new(1), &trace)
            .run(&mut GreedyFifo::new())
            .unwrap();
        assert_eq!(outcome.record(JobId::new(0)).unwrap().completion, 25);
        // Utilisation must be 100%: one machine busy the whole time.
        assert!((outcome.utilization() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn noop_scheduler_stalls() {
        let trace = two_job_trace();
        let err = Simulation::new(SimConfig::new(4), &trace)
            .run(&mut NoopScheduler::default())
            .unwrap_err();
        assert!(matches!(err, SimError::SchedulerStalled { .. }));
    }

    #[test]
    fn horizon_is_enforced() {
        let trace = two_job_trace();
        let err = Simulation::new(SimConfig::new(1).with_max_slots(5), &trace)
            .run(&mut GreedyFifo::new())
            .unwrap_err();
        assert!(matches!(err, SimError::HorizonExceeded { .. }));
    }

    #[test]
    fn cloning_speeds_up_completion_with_resampling() {
        // A single task with a very long sampled workload but a short-mean
        // distribution: clones resample and almost surely finish earlier.
        let dist = mapreduce_workload::DurationDistribution::Deterministic { value: 10.0 };
        let job = JobSpecBuilder::new(JobId::new(0))
            .map_tasks_from_workloads(&[1000.0])
            .map_distribution(dist)
            .build();
        let trace = Trace::new(vec![job]).unwrap();

        let no_clone = Simulation::new(SimConfig::new(4).with_seed(1), &trace)
            .run(&mut GreedyFifo::new())
            .unwrap();
        assert_eq!(no_clone.record(JobId::new(0)).unwrap().completion, 1000);

        let cloned = Simulation::new(SimConfig::new(4).with_seed(1), &trace)
            .run(&mut MaxCloneScheduler::new(4))
            .unwrap();
        // The three clones resample a deterministic 10-slot workload, so the
        // task completes at slot 10.
        assert_eq!(cloned.record(JobId::new(0)).unwrap().completion, 10);
        assert!(cloned.total_copies > no_clone.total_copies);
    }

    #[test]
    fn clone_cap_is_respected() {
        let trace = Trace::new(vec![JobSpecBuilder::new(JobId::new(0))
            .map_tasks_from_workloads(&[50.0])
            .build()])
        .unwrap();
        let outcome = Simulation::new(SimConfig::new(100).with_max_copies_per_task(3), &trace)
            .run(&mut MaxCloneScheduler::new(64))
            .unwrap();
        assert!(outcome.total_copies <= 3);
    }

    #[test]
    fn machine_speed_shortens_durations() {
        let trace = Trace::new(vec![JobSpecBuilder::new(JobId::new(0))
            .map_tasks_from_workloads(&[100.0])
            .build()])
        .unwrap();
        let unit = Simulation::new(SimConfig::new(1), &trace)
            .run(&mut GreedyFifo::new())
            .unwrap();
        let fast = Simulation::new(SimConfig::new(1).with_machine_speed(2.0), &trace)
            .run(&mut GreedyFifo::new())
            .unwrap();
        assert_eq!(unit.record(JobId::new(0)).unwrap().completion, 100);
        assert_eq!(fast.record(JobId::new(0)).unwrap().completion, 50);
    }

    #[test]
    fn straggler_injection_slows_things_down() {
        let trace = WorkloadBuilder::new()
            .num_jobs(20)
            .map_tasks_per_job(2, 4)
            .reduce_tasks_per_job(1, 1)
            .build(3);
        let base_cfg = SimConfig::new(8).with_seed(5);
        let slow_cfg =
            SimConfig::new(8)
                .with_seed(5)
                .with_straggler_model(StragglerModel::MachineSlowdown {
                    probability: 1.0,
                    factor: 3.0,
                });
        let base = Simulation::new(base_cfg, &trace)
            .run(&mut GreedyFifo::new())
            .unwrap();
        let slowed = Simulation::new(slow_cfg, &trace)
            .run(&mut GreedyFifo::new())
            .unwrap();
        assert!(slowed.mean_flowtime() > base.mean_flowtime());
    }

    #[test]
    fn identical_seeds_give_identical_outcomes() {
        let trace = WorkloadBuilder::new().num_jobs(15).build(2);
        let a = Simulation::new(SimConfig::new(6).with_seed(9), &trace)
            .run(&mut GreedyFifo::new())
            .unwrap();
        let b = Simulation::new(SimConfig::new(6).with_seed(9), &trace)
            .run(&mut GreedyFifo::new())
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn ring_width_does_not_change_outcomes() {
        // The calendar ring width is a pure performance knob: any width must
        // produce the bit-identical trajectory (order comes from the
        // (slot, kind, sequence) key, not from bucket geometry).
        let trace = WorkloadBuilder::new()
            .num_jobs(25)
            .map_tasks_per_job(1, 6)
            .reduce_tasks_per_job(0, 2)
            .build(4);
        let reference = Simulation::new(SimConfig::new(8).with_seed(3), &trace)
            .run(&mut MaxCloneScheduler::new(3))
            .unwrap();
        for bits in [4, 6, 16] {
            let outcome = Simulation::new(
                SimConfig::new(8).with_seed(3).with_event_ring_bits(bits),
                &trace,
            )
            .run(&mut MaxCloneScheduler::new(3))
            .unwrap();
            assert_eq!(outcome, reference, "ring bits {bits} diverged");
        }
    }

    #[test]
    fn larger_cluster_is_not_slower() {
        let trace = WorkloadBuilder::new()
            .num_jobs(30)
            .map_tasks_per_job(4, 8)
            .build(4);
        let small = Simulation::new(SimConfig::new(4), &trace)
            .run(&mut GreedyFifo::new())
            .unwrap();
        let large = Simulation::new(SimConfig::new(64), &trace)
            .run(&mut GreedyFifo::new())
            .unwrap();
        assert!(large.mean_flowtime() <= small.mean_flowtime());
    }

    #[test]
    fn unknown_task_launch_is_an_error() {
        struct Bogus;
        impl Scheduler for Bogus {
            fn name(&self) -> &str {
                "bogus"
            }
            fn schedule(&mut self, _state: &ClusterState<'_>) -> Vec<Action> {
                vec![Action::Launch {
                    task: TaskId::new(JobId::new(999), Phase::Map, 0),
                    copies: 1,
                }]
            }
        }
        let trace = two_job_trace();
        let err = Simulation::new(SimConfig::new(2), &trace)
            .run(&mut Bogus)
            .unwrap_err();
        assert!(matches!(err, SimError::UnknownTask(_)));
    }

    #[test]
    fn cancel_copies_trims_to_the_most_progressed() {
        // Launch 3 clones of one long task, then cancel down to 1: the
        // survivor must be the earliest-launched (most progressed) copy, the
        // two cancelled copies must release their machines immediately, and
        // the retracted finish events must not linger.
        struct CancelAfter {
            cancelled: bool,
        }
        impl Scheduler for CancelAfter {
            fn name(&self) -> &str {
                "cancel-after"
            }
            fn wakeup_interval(&self) -> Option<Slot> {
                Some(5)
            }
            fn schedule(&mut self, state: &ClusterState<'_>) -> Vec<Action> {
                let job = state.job(JobId::new(0)).unwrap();
                let task = job.task(Phase::Map, 0).unwrap();
                if task.is_unscheduled() {
                    return vec![Action::Launch {
                        task: task.id(),
                        copies: 3,
                    }];
                }
                if !self.cancelled && state.now() >= 5 && !task.is_finished() {
                    self.cancelled = true;
                    return vec![Action::CancelCopies {
                        task: task.id(),
                        keep: 1,
                    }];
                }
                Vec::new()
            }
        }
        let trace = Trace::new(vec![JobSpecBuilder::new(JobId::new(0))
            .map_tasks_from_workloads(&[20.0])
            .build()])
        .unwrap();
        let outcome = Simulation::new(
            SimConfig::new(3).with_seed(1).with_resample_clones(false),
            &trace,
        )
        .run(&mut CancelAfter { cancelled: false })
        .unwrap();
        // All copies run the same 20-slot workload, so the survivor finishes
        // at 20; the two cancelled clones were busy for 5 slots each.
        assert_eq!(outcome.record(JobId::new(0)).unwrap().completion, 20);
        assert_eq!(outcome.total_copies, 3);
        assert_eq!(outcome.busy_machine_slots, 20 + 5 + 5);
    }

    #[test]
    fn busy_slots_never_exceed_capacity() {
        let trace = WorkloadBuilder::new().num_jobs(25).build(6);
        let outcome = Simulation::new(SimConfig::new(5), &trace)
            .run(&mut GreedyFifo::new())
            .unwrap();
        assert!(outcome.busy_machine_slots <= 5 * outcome.makespan);
        assert!(outcome.utilization() <= 1.0 + 1e-9);
    }

    #[test]
    fn crashes_kill_and_reexecute_work() {
        use crate::config::{FaultClass, FaultPlan};
        let trace = WorkloadBuilder::new().num_jobs(20).build(11);
        let plan = FaultPlan::new(vec![FaultClass::crashes(4, 40.0, 15.0)]);
        let faulty_cfg = SimConfig::new(8).with_seed(3).with_fault_plan(plan);

        let clean = Simulation::new(SimConfig::new(8).with_seed(3), &trace)
            .run(&mut GreedyFifo::new())
            .unwrap();
        let faulty = Simulation::new(faulty_cfg.clone(), &trace)
            .run(&mut GreedyFifo::new())
            .unwrap();

        // Work is lost, jobs are not: every job still completes.
        assert_eq!(faulty.records().len(), 20);
        assert!(faulty.copies_killed_by_fault > 0, "MTBF 40 must bite");
        assert!(faulty.wasted_work > 0);
        assert!(faulty.wasted_work <= faulty.busy_machine_slots);
        assert!(faulty.machine_downtime > 0);
        // Churn can only hurt an identical workload.
        assert!(faulty.mean_flowtime() >= clean.mean_flowtime());
        // A clean run reports zeroed fault counters.
        assert_eq!(clean.copies_killed_by_fault, 0);
        assert_eq!(clean.wasted_work, 0);
        assert_eq!(clean.machine_downtime, 0);

        // Same seed, same plan → bit-identical trajectory.
        let again = Simulation::new(faulty_cfg, &trace)
            .run(&mut GreedyFifo::new())
            .unwrap();
        assert_eq!(faulty, again);
    }

    #[test]
    fn brownouts_slow_launches_without_killing() {
        use crate::config::{FaultClass, FaultPlan};
        // Every machine brown-outs almost immediately and stays degraded for
        // effectively the whole run: copies launch with 3x workloads, nothing
        // is killed, no machine ever leaves service.
        let trace = Trace::new(vec![JobSpecBuilder::new(JobId::new(0))
            .arrival(10)
            .map_tasks_from_workloads(&[12.0, 12.0])
            .build()])
        .unwrap();
        let plan = FaultPlan::new(vec![FaultClass::brownouts(4, 1.0, 1e6, 3.0)]);
        let clean = Simulation::new(SimConfig::new(4).with_seed(5), &trace)
            .run(&mut GreedyFifo::new())
            .unwrap();
        let browned = Simulation::new(SimConfig::new(4).with_seed(5).with_fault_plan(plan), &trace)
            .run(&mut GreedyFifo::new())
            .unwrap();
        assert_eq!(browned.records().len(), 1);
        assert_eq!(browned.copies_killed_by_fault, 0);
        assert_eq!(browned.wasted_work, 0);
        assert_eq!(browned.machine_downtime, 0);
        assert!(
            browned.mean_flowtime() > clean.mean_flowtime(),
            "3x launch multiplier must stretch the flowtime"
        );
    }

    #[test]
    fn empty_fault_plan_is_bit_identical() {
        use crate::config::FaultPlan;
        let trace = WorkloadBuilder::new().num_jobs(30).build(4);
        let base = Simulation::new(SimConfig::new(6).with_seed(2), &trace)
            .run(&mut MaxCloneScheduler::new(3))
            .unwrap();
        let with_empty_plan = Simulation::new(
            SimConfig::new(6)
                .with_seed(2)
                .with_fault_plan(FaultPlan::none()),
            &trace,
        )
        .run(&mut MaxCloneScheduler::new(3))
        .unwrap();
        assert_eq!(base, with_empty_plan);
    }
}
