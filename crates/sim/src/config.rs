//! Simulation configuration.

use mapreduce_support::json::{FromJson, JsonError, JsonValue, ToJson};

/// Model of machine-level straggling applied on top of the workload-level
/// variance already encoded in the trace.
///
/// The paper attributes stragglers to "partially/intermittently failing
/// machines or localized resource bottlenecks" but then folds the effect into
/// the task-workload distribution. [`StragglerModel::MachineSlowdown`] lets
/// experiments re-introduce an explicit machine-level effect (useful for the
/// straggler-mitigation example and for stress tests); the default is
/// [`StragglerModel::None`] which matches the paper's model exactly.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum StragglerModel {
    /// No machine-level slowdown: a copy's duration equals its sampled
    /// workload divided by machine speed.
    #[default]
    None,
    /// Each launched copy independently lands on a "struggling" machine with
    /// probability `probability`; its duration is multiplied by `factor`.
    MachineSlowdown {
        /// Probability that any individual copy is slowed down.
        probability: f64,
        /// Multiplicative slowdown factor (> 1).
        factor: f64,
    },
}

impl StragglerModel {
    /// Validates the model parameters.
    ///
    /// # Panics
    /// Panics if the probability is outside `[0, 1]` or the factor is < 1.
    pub fn validate(&self) {
        if let StragglerModel::MachineSlowdown {
            probability,
            factor,
        } = *self
        {
            assert!(
                (0.0..=1.0).contains(&probability),
                "slowdown probability must be in [0, 1], got {probability}"
            );
            assert!(factor >= 1.0, "slowdown factor must be >= 1, got {factor}");
        }
    }
}

impl ToJson for StragglerModel {
    fn to_json(&self) -> JsonValue {
        match *self {
            StragglerModel::None => JsonValue::String("None".to_string()),
            StragglerModel::MachineSlowdown {
                probability,
                factor,
            } => JsonValue::object([(
                "MachineSlowdown",
                JsonValue::object([
                    ("probability", probability.to_json()),
                    ("factor", factor.to_json()),
                ]),
            )]),
        }
    }
}

impl FromJson for StragglerModel {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        if value.as_str() == Some("None") {
            return Ok(StragglerModel::None);
        }
        if let Some(body) = value.get("MachineSlowdown") {
            return Ok(StragglerModel::MachineSlowdown {
                probability: f64::from_json(body.field("probability")?)?,
                factor: f64::from_json(body.field("factor")?)?,
            });
        }
        Err(JsonError::new("unknown StragglerModel variant"))
    }
}

/// One group of machines sharing identical fault dynamics.
///
/// A class is either a **crash** class (`slowdown: None`) — machines
/// alternate between exponentially distributed up epochs (mean
/// `mean_up_slots`, the MTBF) and down epochs (mean `mean_down_slots`, the
/// MTTR); going down kills every resident copy and removes the machine from
/// the schedulable pool — or a **brown-out** class (`slowdown: Some(f)`) —
/// machines stay schedulable but copies *launched* during a degraded epoch
/// run `f`× slower. Classes cover machine indices consecutively from 0, so a
/// 100k-machine plan is O(classes) in memory, not O(machines).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultClass {
    /// Number of machines covered by this class.
    pub machines: usize,
    /// Mean length (slots) of a healthy epoch — the MTBF.
    pub mean_up_slots: f64,
    /// Mean length (slots) of a failed/degraded epoch — the MTTR.
    pub mean_down_slots: f64,
    /// `None` for a crash class; `Some(factor >= 1)` for a brown-out class
    /// whose degraded epochs multiply launched-copy durations by `factor`.
    pub slowdown: Option<f64>,
}

impl FaultClass {
    /// A crash class: machines fail outright and come back empty.
    pub fn crashes(machines: usize, mean_up_slots: f64, mean_down_slots: f64) -> Self {
        FaultClass {
            machines,
            mean_up_slots,
            mean_down_slots,
            slowdown: None,
        }
    }

    /// A brown-out class: machines keep running but copies launched during a
    /// degraded epoch take `slowdown`× longer.
    pub fn brownouts(
        machines: usize,
        mean_up_slots: f64,
        mean_down_slots: f64,
        slowdown: f64,
    ) -> Self {
        FaultClass {
            machines,
            mean_up_slots,
            mean_down_slots,
            slowdown: Some(slowdown),
        }
    }

    /// Validates one class in isolation.
    ///
    /// # Errors
    /// Returns a human-readable description of the first problem found.
    pub fn check(&self) -> Result<(), String> {
        if self.machines == 0 {
            return Err("fault class must cover at least one machine".to_string());
        }
        if !(self.mean_up_slots.is_finite() && self.mean_up_slots > 0.0) {
            return Err(format!(
                "fault class mean_up_slots must be finite and positive, got {}",
                self.mean_up_slots
            ));
        }
        if !(self.mean_down_slots.is_finite() && self.mean_down_slots > 0.0) {
            return Err(format!(
                "fault class mean_down_slots must be finite and positive, got {}",
                self.mean_down_slots
            ));
        }
        if let Some(factor) = self.slowdown {
            if !(factor.is_finite() && factor >= 1.0) {
                return Err(format!(
                    "fault class slowdown must be finite and >= 1, got {factor}"
                ));
            }
        }
        Ok(())
    }
}

impl ToJson for FaultClass {
    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("machines", self.machines.to_json()),
            ("mean_up_slots", self.mean_up_slots.to_json()),
            ("mean_down_slots", self.mean_down_slots.to_json()),
            ("slowdown", self.slowdown.to_json()),
        ])
    }
}

impl FromJson for FaultClass {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        Ok(FaultClass {
            machines: usize::from_json(value.field("machines")?)?,
            mean_up_slots: f64::from_json(value.field("mean_up_slots")?)?,
            mean_down_slots: f64::from_json(value.field("mean_down_slots")?)?,
            slowdown: match value.get("slowdown") {
                Some(v) => Option::from_json(v)?,
                None => None,
            },
        })
    }
}

/// Deterministic machine-dynamics plan: which machines fail (or brown out),
/// how often, and for how long.
///
/// Epoch lengths are sampled from a dedicated RNG stream derived from the
/// simulation seed, so a plan is a pure function of `(plan, seed)` and two
/// runs with the same config are bit-identical. The **empty plan is free**:
/// the engine builds no machine-residency state for it and produces the
/// bit-identical trajectory of a run without fault injection (pinned by the
/// golden-suite proptests).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Machine classes, covering machine indices consecutively from 0.
    /// Machines beyond the covered prefix never fail.
    pub classes: Vec<FaultClass>,
}

impl FaultPlan {
    /// The empty plan: no machine ever fails.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Builds a plan from classes.
    pub fn new(classes: Vec<FaultClass>) -> Self {
        FaultPlan { classes }
    }

    /// Whether the plan injects no faults at all.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// Total number of machines covered by the plan's classes.
    pub fn covered_machines(&self) -> usize {
        self.classes.iter().map(|c| c.machines).sum()
    }

    /// Validates the plan against a cluster size.
    ///
    /// # Errors
    /// Returns a human-readable description of the first problem found:
    /// an invalid class, or classes covering more machines than exist.
    pub fn check(&self, num_machines: usize) -> Result<(), String> {
        for class in &self.classes {
            class.check()?;
        }
        let covered = self.covered_machines();
        if covered > num_machines {
            return Err(format!(
                "fault plan covers {covered} machines but the cluster has {num_machines}"
            ));
        }
        Ok(())
    }

    /// Panicking form of [`FaultPlan::check`] for builder-style use.
    ///
    /// # Panics
    /// Panics if the plan is invalid for `num_machines` machines.
    pub fn validate(&self, num_machines: usize) {
        if let Err(message) = self.check(num_machines) {
            panic!("{message}");
        }
    }
}

impl ToJson for FaultPlan {
    fn to_json(&self) -> JsonValue {
        JsonValue::object([("classes", self.classes.to_json())])
    }
}

impl FromJson for FaultPlan {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        Ok(FaultPlan {
            classes: Vec::from_json(value.field("classes")?)?,
        })
    }
}

/// Configuration of a single simulation run.
///
/// ```
/// use mapreduce_sim::{SimConfig, StragglerModel};
/// let cfg = SimConfig::new(1000)
///     .with_seed(7)
///     .with_machine_speed(1.2)
///     .with_straggler_model(StragglerModel::MachineSlowdown { probability: 0.05, factor: 4.0 });
/// assert_eq!(cfg.num_machines, 1000);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Number of machines `M` in the cluster.
    pub num_machines: usize,
    /// RNG seed used for clone-workload resampling and straggler injection.
    pub seed: u64,
    /// Machine speed `s`; the paper's resource-augmentation analysis gives the
    /// algorithm machines of speed `1 + ε`. A task copy with workload `p`
    /// needs `ceil(p / speed)` slots.
    pub machine_speed: f64,
    /// Hard horizon on the simulated time, as a safety net against scheduler
    /// bugs. `None` means unbounded.
    pub max_slots: Option<u64>,
    /// Whether clone copies draw a fresh workload from the job's phase
    /// distribution (the paper's evaluation does this); if `false`, or if the
    /// job carries no distribution, clones reuse the original task workload.
    pub resample_clone_workloads: bool,
    /// Upper bound on simultaneously active copies of a single task; guards
    /// against pathological schedulers. The paper's algorithms never need more
    /// than `M / (number of unscheduled tasks)`.
    pub max_copies_per_task: usize,
    /// Machine-level straggler injection model.
    pub straggler: StragglerModel,
    /// Invoke the scheduler at least every `periodic_wakeup` slots even when
    /// no arrival/completion happened (in addition to any interval the
    /// scheduler itself requests). `None` = event-driven only.
    pub periodic_wakeup: Option<u64>,
    /// Width exponent of the engine's calendar event queue: the ring holds
    /// `2^event_ring_bits` slot-granular buckets; events further out go to
    /// the overflow map. A pure performance knob — any width produces the
    /// bit-identical trajectory. See [`crate::events::EventQueue`].
    pub event_ring_bits: u8,
    /// Run the [`crate::Simulation`]'s source-pull and record-folding stages
    /// on pipeline threads around the event loop (bounded SPSC channels)
    /// instead of inline. A pure performance knob — the trajectory and the
    /// resulting [`crate::SimOutcome`] are bit-identical either way, which
    /// is why the flag is deliberately **excluded** from the JSON encoding
    /// (it must not change experiment-cache fingerprints). Default `false`:
    /// the serial path stays the oracle.
    pub pipeline: bool,
    /// Record per-stage wall-clock totals (source pull, event delivery,
    /// scheduler decisions, metrics folding) into the outcome's
    /// `stage_*_ns` fields. Profiling-only: costs two `Instant` reads per
    /// stage slice, never affects the trajectory, and — like `pipeline` —
    /// is excluded from the JSON encoding. Default `false`.
    pub profile_stages: bool,
    /// Machine crash/recovery and brown-out dynamics. The default (empty)
    /// plan injects nothing and is bit-identical to a run without fault
    /// injection; it is serialised **only when non-empty**, so existing
    /// experiment-cache fingerprints are unaffected by the knob's existence.
    pub fault_plan: FaultPlan,
}

impl SimConfig {
    /// Creates a configuration with the given number of machines and sensible
    /// defaults everywhere else.
    ///
    /// # Panics
    /// Panics if `num_machines` is zero.
    pub fn new(num_machines: usize) -> Self {
        assert!(num_machines > 0, "cluster must have at least one machine");
        SimConfig {
            num_machines,
            seed: 0,
            machine_speed: 1.0,
            max_slots: None,
            resample_clone_workloads: true,
            max_copies_per_task: 64,
            straggler: StragglerModel::None,
            periodic_wakeup: None,
            event_ring_bits: crate::events::DEFAULT_RING_BITS,
            pipeline: false,
            profile_stages: false,
            fault_plan: FaultPlan::none(),
        }
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the machine speed (resource augmentation).
    ///
    /// # Panics
    /// Panics if the speed is not strictly positive.
    pub fn with_machine_speed(mut self, speed: f64) -> Self {
        assert!(speed > 0.0, "machine speed must be positive, got {speed}");
        self.machine_speed = speed;
        self
    }

    /// Sets the simulation horizon.
    pub fn with_max_slots(mut self, max_slots: u64) -> Self {
        self.max_slots = Some(max_slots);
        self
    }

    /// Sets whether clone copies resample their workloads.
    pub fn with_resample_clones(mut self, resample: bool) -> Self {
        self.resample_clone_workloads = resample;
        self
    }

    /// Sets the per-task copy cap.
    ///
    /// # Panics
    /// Panics if `max_copies` is zero.
    pub fn with_max_copies_per_task(mut self, max_copies: usize) -> Self {
        assert!(max_copies >= 1, "max copies per task must be at least 1");
        self.max_copies_per_task = max_copies;
        self
    }

    /// Sets the straggler-injection model.
    ///
    /// # Panics
    /// Panics if the model parameters are invalid.
    pub fn with_straggler_model(mut self, model: StragglerModel) -> Self {
        model.validate();
        self.straggler = model;
        self
    }

    /// Sets a periodic scheduler wakeup interval.
    pub fn with_periodic_wakeup(mut self, every: u64) -> Self {
        self.periodic_wakeup = Some(every.max(1));
        self
    }

    /// Enables (or disables) the pipeline-parallel run stages.
    pub fn with_pipeline(mut self, pipeline: bool) -> Self {
        self.pipeline = pipeline;
        self
    }

    /// Enables (or disables) per-stage wall-clock profiling.
    pub fn with_profile_stages(mut self, profile: bool) -> Self {
        self.profile_stages = profile;
        self
    }

    /// Sets the machine-dynamics fault plan.
    ///
    /// # Panics
    /// Panics if the plan is invalid for this cluster size.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        plan.validate(self.num_machines);
        self.fault_plan = plan;
        self
    }

    /// Sets the calendar-queue ring width exponent (`2^bits` buckets).
    ///
    /// # Panics
    /// Panics unless `4 <= bits <= 20`.
    pub fn with_event_ring_bits(mut self, bits: u8) -> Self {
        assert!(
            (4..=20).contains(&bits),
            "event ring bits must be in 4..=20, got {bits}"
        );
        self.event_ring_bits = bits;
        self
    }
}

impl ToJson for SimConfig {
    fn to_json(&self) -> JsonValue {
        let mut fields = vec![
            ("num_machines", self.num_machines.to_json()),
            ("seed", self.seed.to_json()),
            ("machine_speed", self.machine_speed.to_json()),
            ("max_slots", self.max_slots.to_json()),
            (
                "resample_clone_workloads",
                self.resample_clone_workloads.to_json(),
            ),
            ("max_copies_per_task", self.max_copies_per_task.to_json()),
            ("straggler", self.straggler.to_json()),
            ("periodic_wakeup", self.periodic_wakeup.to_json()),
            ("event_ring_bits", (self.event_ring_bits as u64).to_json()),
        ];
        // The empty plan is the semantic default and bit-identical to runs
        // predating fault injection: emitting it only when non-empty keeps
        // every previously persisted cache fingerprint valid.
        if !self.fault_plan.is_empty() {
            fields.push(("fault_plan", self.fault_plan.to_json()));
        }
        JsonValue::object(fields)
    }
}

impl FromJson for SimConfig {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        Ok(SimConfig {
            num_machines: usize::from_json(value.field("num_machines")?)?,
            seed: u64::from_json(value.field("seed")?)?,
            machine_speed: f64::from_json(value.field("machine_speed")?)?,
            max_slots: Option::from_json(value.field("max_slots")?)?,
            resample_clone_workloads: bool::from_json(value.field("resample_clone_workloads")?)?,
            max_copies_per_task: usize::from_json(value.field("max_copies_per_task")?)?,
            straggler: StragglerModel::from_json(value.field("straggler")?)?,
            periodic_wakeup: Option::from_json(value.field("periodic_wakeup")?)?,
            // Absent in configs serialised before the calendar queue existed.
            event_ring_bits: match value.get("event_ring_bits") {
                Some(v) => {
                    let bits = u64::from_json(v)?;
                    if !(4..=20).contains(&bits) {
                        return Err(JsonError::new("event_ring_bits must be in 4..=20"));
                    }
                    bits as u8
                }
                None => crate::events::DEFAULT_RING_BITS,
            },
            // Execution-strategy knobs: deliberately not serialised (they
            // cannot change results, so they must not change fingerprints).
            pipeline: false,
            profile_stages: false,
            // Absent means empty: configs serialised before fault injection
            // existed (and all no-fault configs since) parse identically.
            fault_plan: match value.get("fault_plan") {
                Some(v) => FaultPlan::from_json(v)?,
                None => FaultPlan::none(),
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sensible() {
        let cfg = SimConfig::new(12);
        assert_eq!(cfg.num_machines, 12);
        assert_eq!(cfg.machine_speed, 1.0);
        assert!(cfg.resample_clone_workloads);
        assert_eq!(cfg.straggler, StragglerModel::None);
        assert!(cfg.max_slots.is_none());
    }

    #[test]
    fn builder_setters() {
        let cfg = SimConfig::new(5)
            .with_seed(9)
            .with_machine_speed(1.6)
            .with_max_slots(1000)
            .with_resample_clones(false)
            .with_max_copies_per_task(4)
            .with_periodic_wakeup(10);
        assert_eq!(cfg.seed, 9);
        assert_eq!(cfg.machine_speed, 1.6);
        assert_eq!(cfg.max_slots, Some(1000));
        assert!(!cfg.resample_clone_workloads);
        assert_eq!(cfg.max_copies_per_task, 4);
        assert_eq!(cfg.periodic_wakeup, Some(10));
    }

    #[test]
    #[should_panic(expected = "at least one machine")]
    fn zero_machines_rejected() {
        SimConfig::new(0);
    }

    #[test]
    #[should_panic(expected = "speed must be positive")]
    fn zero_speed_rejected() {
        SimConfig::new(1).with_machine_speed(0.0);
    }

    #[test]
    #[should_panic(expected = "probability must be in")]
    fn bad_straggler_probability_rejected() {
        SimConfig::new(1).with_straggler_model(StragglerModel::MachineSlowdown {
            probability: 1.5,
            factor: 2.0,
        });
    }

    #[test]
    #[should_panic(expected = "factor must be >= 1")]
    fn bad_straggler_factor_rejected() {
        SimConfig::new(1).with_straggler_model(StragglerModel::MachineSlowdown {
            probability: 0.5,
            factor: 0.5,
        });
    }

    #[test]
    fn event_ring_bits_knob() {
        assert_eq!(
            SimConfig::new(1).event_ring_bits,
            crate::events::DEFAULT_RING_BITS
        );
        assert_eq!(SimConfig::new(1).with_event_ring_bits(8).event_ring_bits, 8);
        assert!(std::panic::catch_unwind(|| SimConfig::new(1).with_event_ring_bits(3)).is_err());
        // Configs serialised before the knob existed deserialise with the
        // default width.
        let mut legacy = SimConfig::new(2).to_json();
        if let JsonValue::Object(map) = &mut legacy {
            map.remove("event_ring_bits");
        }
        let back = SimConfig::from_json(&legacy).unwrap();
        assert_eq!(back.event_ring_bits, crate::events::DEFAULT_RING_BITS);
        // Out-of-range serialized values are a parse error, not a truncation
        // or a deferred panic.
        for bad in [3u64, 25, 260] {
            let mut json = SimConfig::new(2).to_json();
            if let JsonValue::Object(map) = &mut json {
                map.insert("event_ring_bits".into(), bad.to_json());
            }
            assert!(SimConfig::from_json(&json).is_err(), "bits {bad} accepted");
        }
    }

    #[test]
    fn execution_knobs_are_fingerprint_neutral() {
        // `pipeline`/`profile_stages` change how a run executes, never what
        // it produces; serialising them would cold every content-addressed
        // cache cell for no semantic reason.
        let cfg = SimConfig::new(3)
            .with_pipeline(true)
            .with_profile_stages(true);
        assert!(cfg.pipeline && cfg.profile_stages);
        let json = cfg.to_json();
        assert!(json.get("pipeline").is_none());
        assert!(json.get("profile_stages").is_none());
        assert_eq!(
            json.to_compact_string(),
            SimConfig::new(3).to_json().to_compact_string()
        );
        let back = SimConfig::from_json(&json).unwrap();
        assert!(!back.pipeline && !back.profile_stages);
    }

    #[test]
    fn json_roundtrip() {
        let cfg = SimConfig::new(3)
            .with_seed(1)
            .with_max_slots(7)
            .with_straggler_model(StragglerModel::MachineSlowdown {
                probability: 0.1,
                factor: 2.0,
            });
        let json = cfg.to_json().to_compact_string();
        let back = SimConfig::from_json(&JsonValue::parse(&json).unwrap()).unwrap();
        assert_eq!(back, cfg);
    }

    #[test]
    fn fault_plan_json_roundtrip_and_empty_plan_is_fingerprint_neutral() {
        // The empty plan must serialise to exactly the pre-fault-injection
        // document: existing persisted cache fingerprints stay valid.
        let plain = SimConfig::new(4).to_json();
        assert!(plain.get("fault_plan").is_none());
        let back = SimConfig::from_json(&plain).unwrap();
        assert!(back.fault_plan.is_empty());

        let plan = FaultPlan::new(vec![
            FaultClass::crashes(2, 500.0, 40.0),
            FaultClass::brownouts(1, 300.0, 100.0, 2.5),
        ]);
        assert_eq!(plan.covered_machines(), 3);
        let cfg = SimConfig::new(4).with_seed(9).with_fault_plan(plan.clone());
        let json = cfg.to_json();
        assert!(json.get("fault_plan").is_some());
        let back =
            SimConfig::from_json(&JsonValue::parse(&json.to_compact_string()).unwrap()).unwrap();
        assert_eq!(back, cfg);
        assert_eq!(back.fault_plan, plan);
        // And a non-empty plan changes the canonical document.
        assert_ne!(
            json.to_compact_string(),
            SimConfig::new(4).with_seed(9).to_json().to_compact_string()
        );
    }

    #[test]
    fn fault_plan_validation() {
        assert!(FaultPlan::none().check(0).is_ok());
        let over = FaultPlan::new(vec![FaultClass::crashes(5, 100.0, 10.0)]);
        assert!(over.check(4).is_err());
        assert!(over.check(5).is_ok());
        assert!(FaultClass::crashes(0, 100.0, 10.0).check().is_err());
        assert!(FaultClass::crashes(1, 0.0, 10.0).check().is_err());
        assert!(FaultClass::crashes(1, 100.0, f64::NAN).check().is_err());
        assert!(FaultClass::brownouts(1, 100.0, 10.0, 0.5).check().is_err());
        assert!(FaultClass::brownouts(1, 100.0, 10.0, 1.0).check().is_ok());
        assert!(std::panic::catch_unwind(|| {
            SimConfig::new(2)
                .with_fault_plan(FaultPlan::new(vec![FaultClass::crashes(3, 100.0, 10.0)]))
        })
        .is_err());
    }
}
