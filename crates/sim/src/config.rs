//! Simulation configuration.

use mapreduce_support::json::{FromJson, JsonError, JsonValue, ToJson};

/// Model of machine-level straggling applied on top of the workload-level
/// variance already encoded in the trace.
///
/// The paper attributes stragglers to "partially/intermittently failing
/// machines or localized resource bottlenecks" but then folds the effect into
/// the task-workload distribution. [`StragglerModel::MachineSlowdown`] lets
/// experiments re-introduce an explicit machine-level effect (useful for the
/// straggler-mitigation example and for stress tests); the default is
/// [`StragglerModel::None`] which matches the paper's model exactly.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum StragglerModel {
    /// No machine-level slowdown: a copy's duration equals its sampled
    /// workload divided by machine speed.
    #[default]
    None,
    /// Each launched copy independently lands on a "struggling" machine with
    /// probability `probability`; its duration is multiplied by `factor`.
    MachineSlowdown {
        /// Probability that any individual copy is slowed down.
        probability: f64,
        /// Multiplicative slowdown factor (> 1).
        factor: f64,
    },
}

impl StragglerModel {
    /// Validates the model parameters.
    ///
    /// # Panics
    /// Panics if the probability is outside `[0, 1]` or the factor is < 1.
    pub fn validate(&self) {
        if let StragglerModel::MachineSlowdown {
            probability,
            factor,
        } = *self
        {
            assert!(
                (0.0..=1.0).contains(&probability),
                "slowdown probability must be in [0, 1], got {probability}"
            );
            assert!(factor >= 1.0, "slowdown factor must be >= 1, got {factor}");
        }
    }
}

impl ToJson for StragglerModel {
    fn to_json(&self) -> JsonValue {
        match *self {
            StragglerModel::None => JsonValue::String("None".to_string()),
            StragglerModel::MachineSlowdown {
                probability,
                factor,
            } => JsonValue::object([(
                "MachineSlowdown",
                JsonValue::object([
                    ("probability", probability.to_json()),
                    ("factor", factor.to_json()),
                ]),
            )]),
        }
    }
}

impl FromJson for StragglerModel {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        if value.as_str() == Some("None") {
            return Ok(StragglerModel::None);
        }
        if let Some(body) = value.get("MachineSlowdown") {
            return Ok(StragglerModel::MachineSlowdown {
                probability: f64::from_json(body.field("probability")?)?,
                factor: f64::from_json(body.field("factor")?)?,
            });
        }
        Err(JsonError::new("unknown StragglerModel variant"))
    }
}

/// Configuration of a single simulation run.
///
/// ```
/// use mapreduce_sim::{SimConfig, StragglerModel};
/// let cfg = SimConfig::new(1000)
///     .with_seed(7)
///     .with_machine_speed(1.2)
///     .with_straggler_model(StragglerModel::MachineSlowdown { probability: 0.05, factor: 4.0 });
/// assert_eq!(cfg.num_machines, 1000);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Number of machines `M` in the cluster.
    pub num_machines: usize,
    /// RNG seed used for clone-workload resampling and straggler injection.
    pub seed: u64,
    /// Machine speed `s`; the paper's resource-augmentation analysis gives the
    /// algorithm machines of speed `1 + ε`. A task copy with workload `p`
    /// needs `ceil(p / speed)` slots.
    pub machine_speed: f64,
    /// Hard horizon on the simulated time, as a safety net against scheduler
    /// bugs. `None` means unbounded.
    pub max_slots: Option<u64>,
    /// Whether clone copies draw a fresh workload from the job's phase
    /// distribution (the paper's evaluation does this); if `false`, or if the
    /// job carries no distribution, clones reuse the original task workload.
    pub resample_clone_workloads: bool,
    /// Upper bound on simultaneously active copies of a single task; guards
    /// against pathological schedulers. The paper's algorithms never need more
    /// than `M / (number of unscheduled tasks)`.
    pub max_copies_per_task: usize,
    /// Machine-level straggler injection model.
    pub straggler: StragglerModel,
    /// Invoke the scheduler at least every `periodic_wakeup` slots even when
    /// no arrival/completion happened (in addition to any interval the
    /// scheduler itself requests). `None` = event-driven only.
    pub periodic_wakeup: Option<u64>,
    /// Width exponent of the engine's calendar event queue: the ring holds
    /// `2^event_ring_bits` slot-granular buckets; events further out go to
    /// the overflow map. A pure performance knob — any width produces the
    /// bit-identical trajectory. See [`crate::events::EventQueue`].
    pub event_ring_bits: u8,
    /// Run the [`crate::Simulation`]'s source-pull and record-folding stages
    /// on pipeline threads around the event loop (bounded SPSC channels)
    /// instead of inline. A pure performance knob — the trajectory and the
    /// resulting [`crate::SimOutcome`] are bit-identical either way, which
    /// is why the flag is deliberately **excluded** from the JSON encoding
    /// (it must not change experiment-cache fingerprints). Default `false`:
    /// the serial path stays the oracle.
    pub pipeline: bool,
    /// Record per-stage wall-clock totals (source pull, event delivery,
    /// scheduler decisions, metrics folding) into the outcome's
    /// `stage_*_ns` fields. Profiling-only: costs two `Instant` reads per
    /// stage slice, never affects the trajectory, and — like `pipeline` —
    /// is excluded from the JSON encoding. Default `false`.
    pub profile_stages: bool,
}

impl SimConfig {
    /// Creates a configuration with the given number of machines and sensible
    /// defaults everywhere else.
    ///
    /// # Panics
    /// Panics if `num_machines` is zero.
    pub fn new(num_machines: usize) -> Self {
        assert!(num_machines > 0, "cluster must have at least one machine");
        SimConfig {
            num_machines,
            seed: 0,
            machine_speed: 1.0,
            max_slots: None,
            resample_clone_workloads: true,
            max_copies_per_task: 64,
            straggler: StragglerModel::None,
            periodic_wakeup: None,
            event_ring_bits: crate::events::DEFAULT_RING_BITS,
            pipeline: false,
            profile_stages: false,
        }
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the machine speed (resource augmentation).
    ///
    /// # Panics
    /// Panics if the speed is not strictly positive.
    pub fn with_machine_speed(mut self, speed: f64) -> Self {
        assert!(speed > 0.0, "machine speed must be positive, got {speed}");
        self.machine_speed = speed;
        self
    }

    /// Sets the simulation horizon.
    pub fn with_max_slots(mut self, max_slots: u64) -> Self {
        self.max_slots = Some(max_slots);
        self
    }

    /// Sets whether clone copies resample their workloads.
    pub fn with_resample_clones(mut self, resample: bool) -> Self {
        self.resample_clone_workloads = resample;
        self
    }

    /// Sets the per-task copy cap.
    ///
    /// # Panics
    /// Panics if `max_copies` is zero.
    pub fn with_max_copies_per_task(mut self, max_copies: usize) -> Self {
        assert!(max_copies >= 1, "max copies per task must be at least 1");
        self.max_copies_per_task = max_copies;
        self
    }

    /// Sets the straggler-injection model.
    ///
    /// # Panics
    /// Panics if the model parameters are invalid.
    pub fn with_straggler_model(mut self, model: StragglerModel) -> Self {
        model.validate();
        self.straggler = model;
        self
    }

    /// Sets a periodic scheduler wakeup interval.
    pub fn with_periodic_wakeup(mut self, every: u64) -> Self {
        self.periodic_wakeup = Some(every.max(1));
        self
    }

    /// Enables (or disables) the pipeline-parallel run stages.
    pub fn with_pipeline(mut self, pipeline: bool) -> Self {
        self.pipeline = pipeline;
        self
    }

    /// Enables (or disables) per-stage wall-clock profiling.
    pub fn with_profile_stages(mut self, profile: bool) -> Self {
        self.profile_stages = profile;
        self
    }

    /// Sets the calendar-queue ring width exponent (`2^bits` buckets).
    ///
    /// # Panics
    /// Panics unless `4 <= bits <= 20`.
    pub fn with_event_ring_bits(mut self, bits: u8) -> Self {
        assert!(
            (4..=20).contains(&bits),
            "event ring bits must be in 4..=20, got {bits}"
        );
        self.event_ring_bits = bits;
        self
    }
}

impl ToJson for SimConfig {
    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("num_machines", self.num_machines.to_json()),
            ("seed", self.seed.to_json()),
            ("machine_speed", self.machine_speed.to_json()),
            ("max_slots", self.max_slots.to_json()),
            (
                "resample_clone_workloads",
                self.resample_clone_workloads.to_json(),
            ),
            ("max_copies_per_task", self.max_copies_per_task.to_json()),
            ("straggler", self.straggler.to_json()),
            ("periodic_wakeup", self.periodic_wakeup.to_json()),
            ("event_ring_bits", (self.event_ring_bits as u64).to_json()),
        ])
    }
}

impl FromJson for SimConfig {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        Ok(SimConfig {
            num_machines: usize::from_json(value.field("num_machines")?)?,
            seed: u64::from_json(value.field("seed")?)?,
            machine_speed: f64::from_json(value.field("machine_speed")?)?,
            max_slots: Option::from_json(value.field("max_slots")?)?,
            resample_clone_workloads: bool::from_json(value.field("resample_clone_workloads")?)?,
            max_copies_per_task: usize::from_json(value.field("max_copies_per_task")?)?,
            straggler: StragglerModel::from_json(value.field("straggler")?)?,
            periodic_wakeup: Option::from_json(value.field("periodic_wakeup")?)?,
            // Absent in configs serialised before the calendar queue existed.
            event_ring_bits: match value.get("event_ring_bits") {
                Some(v) => {
                    let bits = u64::from_json(v)?;
                    if !(4..=20).contains(&bits) {
                        return Err(JsonError::new("event_ring_bits must be in 4..=20"));
                    }
                    bits as u8
                }
                None => crate::events::DEFAULT_RING_BITS,
            },
            // Execution-strategy knobs: deliberately not serialised (they
            // cannot change results, so they must not change fingerprints).
            pipeline: false,
            profile_stages: false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sensible() {
        let cfg = SimConfig::new(12);
        assert_eq!(cfg.num_machines, 12);
        assert_eq!(cfg.machine_speed, 1.0);
        assert!(cfg.resample_clone_workloads);
        assert_eq!(cfg.straggler, StragglerModel::None);
        assert!(cfg.max_slots.is_none());
    }

    #[test]
    fn builder_setters() {
        let cfg = SimConfig::new(5)
            .with_seed(9)
            .with_machine_speed(1.6)
            .with_max_slots(1000)
            .with_resample_clones(false)
            .with_max_copies_per_task(4)
            .with_periodic_wakeup(10);
        assert_eq!(cfg.seed, 9);
        assert_eq!(cfg.machine_speed, 1.6);
        assert_eq!(cfg.max_slots, Some(1000));
        assert!(!cfg.resample_clone_workloads);
        assert_eq!(cfg.max_copies_per_task, 4);
        assert_eq!(cfg.periodic_wakeup, Some(10));
    }

    #[test]
    #[should_panic(expected = "at least one machine")]
    fn zero_machines_rejected() {
        SimConfig::new(0);
    }

    #[test]
    #[should_panic(expected = "speed must be positive")]
    fn zero_speed_rejected() {
        SimConfig::new(1).with_machine_speed(0.0);
    }

    #[test]
    #[should_panic(expected = "probability must be in")]
    fn bad_straggler_probability_rejected() {
        SimConfig::new(1).with_straggler_model(StragglerModel::MachineSlowdown {
            probability: 1.5,
            factor: 2.0,
        });
    }

    #[test]
    #[should_panic(expected = "factor must be >= 1")]
    fn bad_straggler_factor_rejected() {
        SimConfig::new(1).with_straggler_model(StragglerModel::MachineSlowdown {
            probability: 0.5,
            factor: 0.5,
        });
    }

    #[test]
    fn event_ring_bits_knob() {
        assert_eq!(
            SimConfig::new(1).event_ring_bits,
            crate::events::DEFAULT_RING_BITS
        );
        assert_eq!(SimConfig::new(1).with_event_ring_bits(8).event_ring_bits, 8);
        assert!(std::panic::catch_unwind(|| SimConfig::new(1).with_event_ring_bits(3)).is_err());
        // Configs serialised before the knob existed deserialise with the
        // default width.
        let mut legacy = SimConfig::new(2).to_json();
        if let JsonValue::Object(map) = &mut legacy {
            map.remove("event_ring_bits");
        }
        let back = SimConfig::from_json(&legacy).unwrap();
        assert_eq!(back.event_ring_bits, crate::events::DEFAULT_RING_BITS);
        // Out-of-range serialized values are a parse error, not a truncation
        // or a deferred panic.
        for bad in [3u64, 25, 260] {
            let mut json = SimConfig::new(2).to_json();
            if let JsonValue::Object(map) = &mut json {
                map.insert("event_ring_bits".into(), bad.to_json());
            }
            assert!(SimConfig::from_json(&json).is_err(), "bits {bad} accepted");
        }
    }

    #[test]
    fn execution_knobs_are_fingerprint_neutral() {
        // `pipeline`/`profile_stages` change how a run executes, never what
        // it produces; serialising them would cold every content-addressed
        // cache cell for no semantic reason.
        let cfg = SimConfig::new(3)
            .with_pipeline(true)
            .with_profile_stages(true);
        assert!(cfg.pipeline && cfg.profile_stages);
        let json = cfg.to_json();
        assert!(json.get("pipeline").is_none());
        assert!(json.get("profile_stages").is_none());
        assert_eq!(
            json.to_compact_string(),
            SimConfig::new(3).to_json().to_compact_string()
        );
        let back = SimConfig::from_json(&json).unwrap();
        assert!(!back.pipeline && !back.profile_stages);
    }

    #[test]
    fn json_roundtrip() {
        let cfg = SimConfig::new(3)
            .with_seed(1)
            .with_max_slots(7)
            .with_straggler_model(StragglerModel::MachineSlowdown {
                probability: 0.1,
                factor: 2.0,
            });
        let json = cfg.to_json().to_compact_string();
        let back = SimConfig::from_json(&JsonValue::parse(&json).unwrap()).unwrap();
        assert_eq!(back, cfg);
    }
}
