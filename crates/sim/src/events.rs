//! Typed simulation events and the event queue.
//!
//! The engine's arrival/finish/wakeup plumbing used to be inlined in the run
//! loop; it now lives here so ordering and staleness semantics are testable
//! in isolation:
//!
//! * [`Event`] is the typed vocabulary of things that can happen at a slot.
//! * [`EventQueue`] is a min-heap over events with a total, deterministic
//!   order: earlier slots first, arrivals before copy completions at the same
//!   slot, and same-kind ties broken by sequence (arrival order / copy id).
//! * The queue is **stale-entry tolerant** by design: completion events are
//!   never removed when a copy is cancelled (first-copy-wins kills siblings
//!   lazily); the engine validates each popped completion against the live
//!   task state and simply skips entries that no longer apply. This keeps
//!   `push` and `pop` at `O(log n)` with no auxiliary index.

use crate::copy::CopyId;
use crate::state::Slot;
use mapreduce_workload::TaskId;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Something that happens at a simulation slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A job (identified by its dense trace index) arrives at the cluster.
    JobArrival {
        /// Slot of the arrival.
        at: Slot,
        /// Dense index of the job within the trace.
        job_index: usize,
    },
    /// A running copy reaches its finish slot. May be stale by the time it is
    /// popped (sibling finished first, or the copy was cancelled); the engine
    /// validates against live task state.
    CopyFinish {
        /// Slot of the (scheduled) completion.
        at: Slot,
        /// The copy that finishes.
        copy: CopyId,
        /// The task the copy belongs to.
        task: TaskId,
    },
    /// A periodic scheduler wakeup with no state change of its own. The
    /// engine synthesises these between queue events; they never enter the
    /// queue.
    Wakeup {
        /// Slot of the wakeup.
        at: Slot,
    },
}

impl Event {
    /// The slot at which the event fires.
    pub fn at(&self) -> Slot {
        match *self {
            Event::JobArrival { at, .. } => at,
            Event::CopyFinish { at, .. } => at,
            Event::Wakeup { at } => at,
        }
    }

    /// Deterministic ordering key: slot, then kind (arrivals before
    /// completions), then sequence.
    fn key(&self) -> (Slot, u8, u64) {
        match *self {
            Event::JobArrival { at, job_index } => (at, 0, job_index as u64),
            Event::CopyFinish { at, copy, .. } => (at, 1, copy.0),
            Event::Wakeup { at } => (at, 2, 0),
        }
    }
}

/// Min-heap of pending [`Event`]s with deterministic total order.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<HeapEntry>>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct HeapEntry {
    key: (Slot, u8, u64),
    event: Event,
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Number of pending events (including entries that may be stale).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules an event.
    pub fn push(&mut self, event: Event) {
        debug_assert!(
            !matches!(event, Event::Wakeup { .. }),
            "wakeups are synthesised by the engine, not queued"
        );
        self.heap.push(Reverse(HeapEntry {
            key: event.key(),
            event,
        }));
    }

    /// The slot of the earliest pending event, if any.
    pub fn peek_slot(&self) -> Option<Slot> {
        self.heap.peek().map(|Reverse(entry)| entry.key.0)
    }

    /// Pops the earliest event if it fires at or before `now`.
    pub fn pop_due(&mut self, now: Slot) -> Option<Event> {
        match self.heap.peek() {
            Some(Reverse(entry)) if entry.key.0 <= now => {
                Some(self.heap.pop().expect("peeked").0.event)
            }
            _ => None,
        }
    }
}

/// What causes the next decision instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecisionCause {
    /// A queued event (arrival or completion) fires.
    QueuedEvent,
    /// A periodic wakeup fires with no queued event due first.
    Wakeup,
}

/// Computes the next decision instant from the queue head and an optional
/// periodic-wakeup deadline. Queued events win ties, so a wakeup coinciding
/// with a real event never produces an extra scheduler invocation.
pub fn next_decision(
    queue_head: Option<Slot>,
    wakeup: Option<Slot>,
) -> Option<(Slot, DecisionCause)> {
    match (queue_head, wakeup) {
        (Some(q), Some(w)) if w < q => Some((w, DecisionCause::Wakeup)),
        (Some(q), _) => Some((q, DecisionCause::QueuedEvent)),
        (None, Some(w)) => Some((w, DecisionCause::Wakeup)),
        (None, None) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapreduce_workload::{JobId, Phase};

    fn task(job: u64, phase: Phase, index: u32) -> TaskId {
        TaskId::new(JobId::new(job), phase, index)
    }

    #[test]
    fn events_pop_in_slot_order() {
        let mut q = EventQueue::new();
        q.push(Event::CopyFinish {
            at: 30,
            copy: CopyId(2),
            task: task(0, Phase::Map, 0),
        });
        q.push(Event::JobArrival {
            at: 10,
            job_index: 1,
        });
        q.push(Event::CopyFinish {
            at: 20,
            copy: CopyId(1),
            task: task(0, Phase::Map, 1),
        });
        assert_eq!(q.len(), 3);
        assert_eq!(q.peek_slot(), Some(10));
        let slots: Vec<Slot> =
            std::iter::from_fn(|| q.pop_due(Slot::MAX).map(|e| e.at())).collect();
        assert_eq!(slots, vec![10, 20, 30]);
        assert!(q.is_empty());
    }

    #[test]
    fn arrivals_precede_completions_at_the_same_slot() {
        let mut q = EventQueue::new();
        q.push(Event::CopyFinish {
            at: 5,
            copy: CopyId(0),
            task: task(0, Phase::Map, 0),
        });
        q.push(Event::JobArrival {
            at: 5,
            job_index: 9,
        });
        assert!(matches!(
            q.pop_due(5),
            Some(Event::JobArrival { job_index: 9, .. })
        ));
        assert!(matches!(q.pop_due(5), Some(Event::CopyFinish { .. })));
    }

    #[test]
    fn same_slot_completions_pop_in_copy_id_order() {
        // Map→Reduce precedence activation pushes reduce-copy completions in
        // task-index (and therefore copy-id) order; the queue must preserve
        // that order for determinism.
        let mut q = EventQueue::new();
        for copy in [3u64, 1, 2] {
            q.push(Event::CopyFinish {
                at: 7,
                copy: CopyId(copy),
                task: task(0, Phase::Reduce, copy as u32),
            });
        }
        let copies: Vec<u64> = std::iter::from_fn(|| {
            q.pop_due(7).map(|e| match e {
                Event::CopyFinish { copy, .. } => copy.0,
                _ => unreachable!(),
            })
        })
        .collect();
        assert_eq!(copies, vec![1, 2, 3]);
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.push(Event::JobArrival {
            at: 50,
            job_index: 0,
        });
        assert_eq!(q.pop_due(49), None);
        assert_eq!(q.len(), 1);
        assert!(q.pop_due(50).is_some());
    }

    #[test]
    fn stale_sibling_finish_events_are_skipped() {
        // One 50-slot task whose clones resample a deterministic 10-slot
        // workload: the clone wins at slot 10, cancelling the original. The
        // original's finish event at slot 50 stays in the queue and must be
        // recognised as stale — the run ends at makespan 10 with exactly one
        // completion and consistent machine accounting.
        use crate::config::SimConfig;
        use crate::engine::Simulation;
        use crate::schedulers::MaxCloneScheduler;
        use mapreduce_workload::{DurationDistribution, JobSpecBuilder, Trace};

        let job = JobSpecBuilder::new(JobId::new(0))
            .map_tasks_from_workloads(&[50.0])
            .map_distribution(DurationDistribution::Deterministic { value: 10.0 })
            .build();
        let trace = Trace::new(vec![job]).unwrap();
        let outcome = Simulation::new(SimConfig::new(2).with_seed(1), &trace)
            .run(&mut MaxCloneScheduler::new(2))
            .unwrap();
        let record = outcome.record(JobId::new(0)).unwrap();
        assert_eq!(record.completion, 10);
        assert_eq!(outcome.makespan, 10);
        assert_eq!(outcome.total_copies, 2);
        // 2 machines × 10 slots, both fully busy until first-copy-wins.
        assert_eq!(outcome.busy_machine_slots, 20);
    }

    #[test]
    fn first_copy_wins_frees_machines_for_waiting_work() {
        // Clone cancellation must release the sibling's machine immediately:
        // a second job that arrives while both machines are occupied by the
        // clones starts right at the winner's finish slot.
        use crate::config::SimConfig;
        use crate::engine::Simulation;
        use crate::schedulers::MaxCloneScheduler;
        use mapreduce_workload::{DurationDistribution, JobSpecBuilder, Trace};

        let cloned = JobSpecBuilder::new(JobId::new(0))
            .map_tasks_from_workloads(&[50.0])
            .map_distribution(DurationDistribution::Deterministic { value: 10.0 })
            .build();
        let waiter = JobSpecBuilder::new(JobId::new(1))
            .arrival(1)
            .map_tasks_from_workloads(&[5.0])
            .build();
        let trace = Trace::new(vec![cloned, waiter]).unwrap();
        let outcome = Simulation::new(SimConfig::new(2).with_seed(1), &trace)
            .run(&mut MaxCloneScheduler::new(2))
            .unwrap();
        // Winner finishes at 10, cancelling its sibling; both machines free →
        // the waiting job runs 10..15.
        assert_eq!(outcome.record(JobId::new(0)).unwrap().completion, 10);
        assert_eq!(outcome.record(JobId::new(1)).unwrap().completion, 15);
    }

    #[test]
    fn early_launched_reduce_copies_activate_when_map_completes() {
        // A scheduler that launches *everything* at slot 0 (as Algorithm 1
        // does): the reduce copies hold machines in WaitingForMapPhase. When
        // the map phase ends (slot 10) they activate — in task-index order,
        // per the queue's same-slot ordering — and run their full durations.
        use crate::config::SimConfig;
        use crate::engine::Simulation;
        use crate::state::{Action, ClusterState, Scheduler};

        struct LaunchEverything;
        impl Scheduler for LaunchEverything {
            fn name(&self) -> &str {
                "launch-everything"
            }
            fn schedule(&mut self, state: &ClusterState<'_>) -> Vec<Action> {
                let mut actions = Vec::new();
                for job in state.alive_jobs() {
                    for phase in Phase::ALL {
                        for task in job.unscheduled_tasks(phase) {
                            actions.push(Action::Launch {
                                task: task.id(),
                                copies: 1,
                            });
                        }
                    }
                }
                actions
            }
        }

        use mapreduce_workload::{JobSpecBuilder, Trace};
        let job = JobSpecBuilder::new(JobId::new(0))
            .map_tasks_from_workloads(&[10.0])
            .reduce_tasks_from_workloads(&[7.0, 3.0])
            .build();
        let trace = Trace::new(vec![job]).unwrap();
        let outcome = Simulation::new(SimConfig::new(8), &trace)
            .run(&mut LaunchEverything)
            .unwrap();
        // Map ends at 10; the longer reduce task determines completion: 17.
        assert_eq!(outcome.record(JobId::new(0)).unwrap().completion, 17);
        // Three copies (1 map + 2 reduce), no clones.
        assert_eq!(outcome.total_copies, 3);
        // Reduce copies held their machines from slot 0 while waiting:
        // busy = 10 (map) + 17 + 13 = 40 machine-slots.
        assert_eq!(outcome.busy_machine_slots, 40);
    }

    #[test]
    fn next_decision_prefers_queued_events_on_ties() {
        use DecisionCause::*;
        assert_eq!(next_decision(None, None), None);
        assert_eq!(next_decision(Some(5), None), Some((5, QueuedEvent)));
        assert_eq!(next_decision(None, Some(9)), Some((9, Wakeup)));
        assert_eq!(next_decision(Some(5), Some(9)), Some((5, QueuedEvent)));
        assert_eq!(next_decision(Some(9), Some(5)), Some((5, Wakeup)));
        assert_eq!(next_decision(Some(7), Some(7)), Some((7, QueuedEvent)));
    }
}
