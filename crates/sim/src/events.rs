//! Typed simulation events and the event queue.
//!
//! The engine's arrival/finish/wakeup plumbing used to be inlined in the run
//! loop; it now lives here so ordering and staleness semantics are testable
//! in isolation:
//!
//! * [`Event`] is the typed vocabulary of things that can happen at a slot.
//! * [`EventQueue`] is a slot-granular **calendar queue**: a ring of per-slot
//!   buckets plus an overflow map for far-future slots, with `O(1)` amortized
//!   push and pop. It delivers events in the same total, deterministic order
//!   as a binary heap over `(slot, kind, sequence)` would: earlier slots
//!   first, arrivals before copy completions at the same slot, and same-kind
//!   ties broken by sequence (arrival order / copy allocation order — copy
//!   *slots* are recycled across a run, allocation sequences never are).
//! * [`HeapEventQueue`] is the frozen pre-calendar implementation (a
//!   `BinaryHeap` min-heap). It is kept verbatim as the ordering oracle for
//!   the side-by-side equivalence proptests and the `event_path` benchmark.
//!
//! # Staleness, retraction and tombstones
//!
//! Completion events can become stale before they fire: first-copy-wins kills
//! sibling copies and `CancelCopies` actions kill speculative ones. The heap
//! design left stale entries in place ("lazy deletion") and the engine
//! validated every popped completion against live task state. The calendar
//! queue instead supports **retraction**: when the engine cancels a running
//! copy it calls [`EventQueue::retract`] with the copy's scheduled finish
//! slot. The queue appends the copy's allocation sequence to the bucket's
//! retracted list and,
//! once retracted entries reach half the bucket, **compacts** the bucket —
//! removing the stale entries in one pass. Compaction converts removed
//! entries into per-bucket **tombstones**: the slot still *fires* (it shows
//! up in [`EventQueue::peek_slot`] and wakes the engine exactly like popping
//! and skipping a stale entry used to) but carries no payload. This keeps the
//! simulated trajectory bit-identical to the lazy-deletion engine while
//! cancellation-heavy schedules stop paying per-stale-entry ordering costs.
//!
//! A retraction at or before the drained position is ignored (the entry is
//! already in flight for the current instant); the engine's pop-time
//! validation remains as the backstop for exactly that same-slot tie case.

use crate::copy::CopyId;
use crate::state::Slot;
use mapreduce_workload::TaskId;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

/// Something that happens at a simulation slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A job (identified by its dense trace index) arrives at the cluster.
    JobArrival {
        /// Slot of the arrival.
        at: Slot,
        /// Dense index of the job within the trace.
        job_index: usize,
    },
    /// A running copy reaches its finish slot. May be stale by the time it is
    /// popped (sibling finished first, the copy was cancelled, or its slot
    /// was recycled after the owning job completed); the engine validates
    /// against live task state and the copy's allocation sequence.
    CopyFinish {
        /// Slot of the (scheduled) completion.
        at: Slot,
        /// The arena slot of the copy that finishes.
        copy: CopyId,
        /// The task the copy belongs to.
        task: TaskId,
        /// The copy's run-unique allocation sequence
        /// ([`crate::copy::CopyRef::seq`]). Orders same-slot completions
        /// deterministically (copy slots are recycled; sequences never are)
        /// and lets retraction and pop-time validation tell a stale entry
        /// from a reused slot.
        seq: u64,
    },
    /// A machine recovers (crash class) or leaves a degraded epoch
    /// (brown-out class). Fires after same-slot completions so a copy
    /// finishing exactly at the recovery instant completes normally first.
    MachineUp {
        /// Slot of the recovery.
        at: Slot,
        /// Index of the machine.
        machine: u32,
        /// `true` for a crash-class recovery (capacity returns), `false`
        /// for the end of a brown-out epoch (speed returns).
        crash: bool,
    },
    /// A machine fails (crash class: every resident copy is killed and the
    /// machine leaves the schedulable pool) or enters a degraded epoch
    /// (brown-out class: copies launched while degraded run slower).
    MachineDown {
        /// Slot of the failure.
        at: Slot,
        /// Index of the machine.
        machine: u32,
        /// `true` for a crash, `false` for a brown-out.
        crash: bool,
    },
    /// A periodic scheduler wakeup with no state change of its own. The
    /// engine synthesises these between queue events; they never enter the
    /// queue.
    Wakeup {
        /// Slot of the wakeup.
        at: Slot,
    },
}

impl Event {
    /// The slot at which the event fires.
    pub fn at(&self) -> Slot {
        match *self {
            Event::JobArrival { at, .. } => at,
            Event::CopyFinish { at, .. } => at,
            Event::MachineUp { at, .. } => at,
            Event::MachineDown { at, .. } => at,
            Event::Wakeup { at } => at,
        }
    }

    /// Deterministic ordering key: slot, then kind (arrivals before
    /// completions, completions before machine transitions, recoveries
    /// before failures), then sequence (arrival order / copy allocation
    /// order / machine index — *not* the recyclable copy slot).
    fn key(&self) -> (Slot, u8, u64) {
        match *self {
            Event::JobArrival { at, job_index } => (at, 0, job_index as u64),
            Event::CopyFinish { at, seq, .. } => (at, 1, seq),
            Event::MachineUp { at, machine, .. } => (at, 2, machine as u64),
            Event::MachineDown { at, machine, .. } => (at, 3, machine as u64),
            Event::Wakeup { at } => (at, 4, 0),
        }
    }

    /// In-bucket ordering key (the slot is implied by the bucket).
    fn bucket_key(&self) -> (u8, u64) {
        let (_, kind, seq) = self.key();
        (kind, seq)
    }
}

/// Default ring width exponent: `2^11 = 2048` slot-granular buckets. Copy
/// durations overwhelmingly land within a couple of thousand slots of the
/// current instant in the paper's traces, so the ring absorbs nearly all
/// pushes; anything further out (job arrivals seeded up front, heavy-tail
/// durations) goes to the overflow map and is pulled in as the window slides.
pub const DEFAULT_RING_BITS: u8 = 11;

/// One calendar bucket: every pending event of a single slot.
#[derive(Debug, Default)]
struct Bucket {
    /// Pending events of this slot. Unsorted until the bucket starts
    /// draining, then sorted by `(kind, sequence)`.
    entries: Vec<Event>,
    /// Allocation sequences whose `CopyFinish` entries in this bucket were
    /// retracted but not yet compacted away. Sequences (not copy slots)
    /// identify entries uniquely even after slot recycling.
    retracted: Vec<u64>,
    /// Entries removed by compaction. The slot still fires while any remain.
    tombstones: u32,
    /// Whether `entries` is sorted (set when draining begins).
    sorted: bool,
    /// Drain position within `entries` (only non-zero mid-`pop_due`).
    cursor: usize,
}

impl Bucket {
    /// Whether nothing in this bucket remains to fire.
    fn is_unoccupied(&self) -> bool {
        self.cursor >= self.entries.len() && self.tombstones == 0
    }

    /// Live (not yet drained) entries.
    fn live(&self) -> usize {
        self.entries.len() - self.cursor
    }

    /// Removes retracted `CopyFinish` entries from the undrained tail in one
    /// pass, converting them into tombstones. Returns how many were removed.
    fn compact(&mut self) -> usize {
        if self.retracted.is_empty() {
            return 0;
        }
        self.retracted.sort_unstable();
        let retracted = std::mem::take(&mut self.retracted);
        let before = self.entries.len();
        let cursor = self.cursor;
        let mut kept = cursor;
        for i in cursor..before {
            let stale = match self.entries[i] {
                Event::CopyFinish { seq, .. } => retracted.binary_search(&seq).is_ok(),
                _ => false,
            };
            if !stale {
                self.entries.swap(kept, i);
                kept += 1;
            }
        }
        self.entries.truncate(kept);
        let removed = before - kept;
        self.tombstones += removed as u32;
        // A swap-based retain perturbs the tail order; re-sort on drain.
        if removed > 0 {
            self.sorted = false;
        }
        removed
    }

    /// Resets the bucket for reuse, keeping allocations.
    fn reset(&mut self) {
        self.entries.clear();
        self.retracted.clear();
        self.tombstones = 0;
        self.sorted = false;
        self.cursor = 0;
    }
}

/// Running totals of the queue's stale-entry handling, exposed for tests and
/// the `event_path` benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StaleStats {
    /// Retractions accepted (recorded against a future bucket).
    pub retracted: u64,
    /// Retractions ignored because the target slot was already draining or
    /// drained (the engine's pop-time validation covers those).
    pub late_retractions: u64,
    /// Stale entries physically removed by bucket compaction.
    pub compacted: u64,
}

/// Slot-granular calendar queue of pending [`Event`]s with the same
/// deterministic total order as a `(slot, kind, sequence)` min-heap.
///
/// The queue is a ring of `2^ring_bits` per-slot buckets anchored at the
/// drained position plus a `BTreeMap` overflow for slots beyond the ring
/// window. `push` is `O(1)` (amortized; far-future events pay one map insert
/// and one move back into the ring as the window slides over them), and
/// draining an instant costs one sort of that slot's (typically tiny) bucket
/// instead of a heap pop per event.
///
/// Events must not be scheduled at slots the queue has already drained past
/// ([`EventQueue::drained_to`]); the engine never does (a copy's duration is
/// at least one slot), and the constraint is asserted in `push`.
#[derive(Debug)]
pub struct EventQueue {
    ring: Box<[Bucket]>,
    /// Occupancy bitmap over ring indices, one bit per bucket.
    occupancy: Box<[u64]>,
    mask: u64,
    /// Window anchor: every stored event fires at or after `base`; ring
    /// buckets hold slots in `[base, base + ring_len)`.
    base: Slot,
    /// Number of occupied ring buckets.
    ring_occupied: usize,
    /// Far-future buckets (slot >= base + ring_len).
    overflow: BTreeMap<Slot, Bucket>,
    /// Stored (not yet popped or compacted) entries, including stale ones
    /// that have not been compacted yet.
    len: usize,
    /// Sum of tombstones across buckets (instants that must still fire).
    tombstones: u64,
    stats: StaleStats,
}

impl Default for EventQueue {
    fn default() -> Self {
        EventQueue::with_ring_bits(DEFAULT_RING_BITS)
    }
}

impl EventQueue {
    /// An empty queue with the default ring width.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// An empty queue with `2^ring_bits` ring buckets.
    ///
    /// # Panics
    /// Panics unless `4 <= ring_bits <= 20`.
    pub fn with_ring_bits(ring_bits: u8) -> Self {
        assert!(
            (4..=20).contains(&ring_bits),
            "ring bits must be in 4..=20, got {ring_bits}"
        );
        let ring_len = 1usize << ring_bits;
        EventQueue {
            ring: (0..ring_len).map(|_| Bucket::default()).collect(),
            occupancy: vec![0u64; ring_len.div_ceil(64)].into_boxed_slice(),
            mask: (ring_len - 1) as u64,
            base: 0,
            ring_occupied: 0,
            overflow: BTreeMap::new(),
            len: 0,
            tombstones: 0,
            stats: StaleStats::default(),
        }
    }

    fn ring_len(&self) -> u64 {
        self.mask + 1
    }

    /// Number of pending events (including entries that may be stale but are
    /// not yet compacted).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether nothing is pending: no events and no tombstoned instants.
    pub fn is_empty(&self) -> bool {
        self.len == 0 && self.tombstones == 0
    }

    /// The slot before which everything has been drained. Pushes must target
    /// this slot or later.
    pub fn drained_to(&self) -> Slot {
        self.base
    }

    /// Stale-entry accounting totals.
    pub fn stale_stats(&self) -> StaleStats {
        self.stats
    }

    fn occ_set(&mut self, idx: usize) {
        let word = idx / 64;
        let bit = 1u64 << (idx % 64);
        if self.occupancy[word] & bit == 0 {
            self.occupancy[word] |= bit;
            self.ring_occupied += 1;
        }
    }

    fn occ_clear(&mut self, idx: usize) {
        let word = idx / 64;
        let bit = 1u64 << (idx % 64);
        if self.occupancy[word] & bit != 0 {
            self.occupancy[word] &= !bit;
            self.ring_occupied -= 1;
        }
    }

    /// Index of the first occupied bucket at or after `start` in circular
    /// window order, if any bucket is occupied.
    fn occ_scan_from(&self, start: usize) -> Option<usize> {
        if self.ring_occupied == 0 {
            return None;
        }
        let words = self.occupancy.len();
        let w0 = start / 64;
        // The start word, masked to the bits at or after `start`.
        let masked = self.occupancy[w0] & (!0u64 << (start % 64));
        if masked != 0 {
            return Some(w0 * 64 + masked.trailing_zeros() as usize);
        }
        // The remaining words in circular order; the start word is visited
        // once more at the end for its masked-off prefix.
        for i in 1..=words {
            let w = (w0 + i) % words;
            let mut bits = self.occupancy[w];
            if w == w0 {
                bits &= !(!0u64 << (start % 64));
            }
            if bits != 0 {
                return Some(w * 64 + bits.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Schedules an event.
    ///
    /// # Panics
    /// Panics (debug builds) if the event fires before the drained position
    /// or is a [`Event::Wakeup`] (wakeups are synthesised by the engine).
    pub fn push(&mut self, event: Event) {
        debug_assert!(
            !matches!(event, Event::Wakeup { .. }),
            "wakeups are synthesised by the engine, not queued"
        );
        let slot = event.at();
        debug_assert!(
            slot >= self.base,
            "event at slot {slot} scheduled behind the drained position {}",
            self.base
        );
        self.len += 1;
        if slot.wrapping_sub(self.base) < self.ring_len() {
            let idx = (slot & self.mask) as usize;
            let bucket = &mut self.ring[idx];
            if bucket.sorted {
                // Same-slot push while the bucket drains: keep the undrained
                // tail sorted so pop order stays correct.
                let key = event.bucket_key();
                let pos = bucket.entries[bucket.cursor..].partition_point(|e| e.bucket_key() < key)
                    + bucket.cursor;
                bucket.entries.insert(pos, event);
            } else {
                bucket.entries.push(event);
            }
            self.occ_set(idx);
        } else {
            self.overflow.entry(slot).or_default().entries.push(event);
        }
    }

    /// Retracts the `CopyFinish` entry with allocation sequence `seq`
    /// scheduled at `at` (the engine calls this when it cancels a running
    /// copy). Entries at or before the drained position are left for
    /// pop-time validation; future entries are marked stale and compacted
    /// away in bulk once they make up half of their bucket.
    pub fn retract(&mut self, at: Slot, seq: u64) {
        if at <= self.base {
            self.stats.late_retractions += 1;
            return;
        }
        let in_ring = at.wrapping_sub(self.base) < self.ring_len();
        let bucket = if in_ring {
            &mut self.ring[(at & self.mask) as usize]
        } else {
            match self.overflow.get_mut(&at) {
                Some(bucket) => bucket,
                None => {
                    self.stats.late_retractions += 1;
                    return;
                }
            }
        };
        if bucket.live() == 0 {
            self.stats.late_retractions += 1;
            return;
        }
        bucket.retracted.push(seq);
        self.stats.retracted += 1;
        if bucket.retracted.len() * 2 >= bucket.live() {
            let removed = bucket.compact();
            self.len -= removed;
            self.tombstones += removed as u64;
            self.stats.compacted += removed as u64;
        }
    }

    /// The slot of the earliest pending instant, if any. Includes tombstoned
    /// instants: a slot whose events were all retracted still fires (and
    /// delivers nothing), exactly like popping and skipping a stale entry.
    pub fn peek_slot(&self) -> Option<Slot> {
        let start = (self.base & self.mask) as usize;
        if let Some(idx) = self.occ_scan_from(start) {
            let delta = (idx as u64).wrapping_sub(self.base & self.mask) & self.mask;
            return Some(self.base + delta);
        }
        self.overflow.keys().next().copied()
    }

    /// Moves the window anchor forward to `slot`, pulling overflow buckets
    /// that now fall inside the ring window. Requires every bucket before
    /// `slot` to be drained.
    fn advance_to(&mut self, slot: Slot) {
        if slot <= self.base {
            return;
        }
        self.base = slot;
        let window_end = self.base.saturating_add(self.ring_len());
        while let Some((&first, _)) = self.overflow.first_key_value() {
            if first >= window_end {
                break;
            }
            let from = self.overflow.remove(&first).expect("peeked key");
            let idx = (first & self.mask) as usize;
            let into = &mut self.ring[idx];
            debug_assert!(into.is_unoccupied() && into.entries.is_empty());
            into.entries.extend_from_slice(&from.entries);
            into.retracted.extend_from_slice(&from.retracted);
            into.tombstones += from.tombstones;
            self.occ_set(idx);
        }
    }

    /// Prepares the bucket of `slot` (which must be the earliest occupied
    /// instant) for draining: window advance, compaction, sort. Returns the
    /// ring index.
    fn open_bucket(&mut self, slot: Slot) -> usize {
        self.advance_to(slot);
        let idx = (slot & self.mask) as usize;
        let bucket = &mut self.ring[idx];
        if !bucket.sorted {
            let removed = bucket.compact();
            self.len -= removed;
            self.stats.compacted += removed as u64;
            // Tombstones created at drain time have already "fired" — the
            // instant is being delivered right now — so they are consumed
            // immediately rather than added to the pending total.
            bucket.tombstones = bucket.tombstones.saturating_sub(removed as u32);
            bucket.entries[bucket.cursor..].sort_unstable_by_key(Event::bucket_key);
            bucket.sorted = true;
        }
        idx
    }

    /// Releases a fully drained bucket.
    fn close_bucket(&mut self, idx: usize) {
        let bucket = &mut self.ring[idx];
        debug_assert!(bucket.cursor >= bucket.entries.len());
        self.tombstones -= u64::from(bucket.tombstones);
        bucket.reset();
        self.occ_clear(idx);
    }

    /// Pops the earliest event if it fires at or before `now`. Tombstoned
    /// instants at or before `now` are consumed silently.
    pub fn pop_due(&mut self, now: Slot) -> Option<Event> {
        loop {
            let slot = self.peek_slot()?;
            if slot > now {
                return None;
            }
            let idx = self.open_bucket(slot);
            let bucket = &mut self.ring[idx];
            if bucket.cursor < bucket.entries.len() {
                let event = bucket.entries[bucket.cursor];
                bucket.cursor += 1;
                self.len -= 1;
                if self.ring[idx].is_unoccupied() {
                    self.close_bucket(idx);
                }
                return Some(event);
            }
            // Tombstones only: the instant fires with no payload.
            self.close_bucket(idx);
        }
    }

    /// Drains every event due at or before `now` into `out`, in full
    /// deterministic order, consuming tombstoned instants along the way. The
    /// engine delivers one decision instant per call, so this typically
    /// empties exactly one bucket with a single sort.
    pub fn drain_due(&mut self, now: Slot, out: &mut Vec<Event>) {
        while let Some(slot) = self.peek_slot() {
            if slot > now {
                break;
            }
            let idx = self.open_bucket(slot);
            let bucket = &mut self.ring[idx];
            out.extend_from_slice(&bucket.entries[bucket.cursor..]);
            self.len -= bucket.live();
            bucket.cursor = bucket.entries.len();
            self.close_bucket(idx);
        }
        // Anchor the window at the delivered instant so far-future pushes
        // from the handlers land in the freshest possible ring window.
        self.advance_to(now);
    }
}

/// The frozen pre-calendar event queue: a min-heap with lazy stale entries.
///
/// This is the exact `BinaryHeap` implementation the engine used before the
/// calendar queue. It is retained as the **ordering oracle**: the
/// side-by-side proptests drive both queues over randomized event streams
/// and assert identical pop order, and the `event_path` benchmark uses it as
/// the same-machine baseline. Do not "improve" it; its value is that it does
/// not change.
#[derive(Debug, Default)]
pub struct HeapEventQueue {
    heap: BinaryHeap<Reverse<HeapEntry>>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct HeapEntry {
    key: (Slot, u8, u64),
    event: Event,
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

impl HeapEventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        HeapEventQueue::default()
    }

    /// Number of pending events (including entries that may be stale).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules an event.
    pub fn push(&mut self, event: Event) {
        debug_assert!(
            !matches!(event, Event::Wakeup { .. }),
            "wakeups are synthesised by the engine, not queued"
        );
        self.heap.push(Reverse(HeapEntry {
            key: event.key(),
            event,
        }));
    }

    /// The slot of the earliest pending event, if any.
    pub fn peek_slot(&self) -> Option<Slot> {
        self.heap.peek().map(|Reverse(entry)| entry.key.0)
    }

    /// Pops the earliest event if it fires at or before `now`.
    pub fn pop_due(&mut self, now: Slot) -> Option<Event> {
        match self.heap.peek() {
            Some(Reverse(entry)) if entry.key.0 <= now => {
                Some(self.heap.pop().expect("peeked").0.event)
            }
            _ => None,
        }
    }
}

/// What causes the next decision instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecisionCause {
    /// A queued event (arrival or completion) fires.
    QueuedEvent,
    /// A periodic wakeup fires with no queued event due first.
    Wakeup,
}

/// Computes the next decision instant from the queue head and an optional
/// periodic-wakeup deadline. Queued events win ties, so a wakeup coinciding
/// with a real event never produces an extra scheduler invocation.
pub fn next_decision(
    queue_head: Option<Slot>,
    wakeup: Option<Slot>,
) -> Option<(Slot, DecisionCause)> {
    match (queue_head, wakeup) {
        (Some(q), Some(w)) if w < q => Some((w, DecisionCause::Wakeup)),
        (Some(q), _) => Some((q, DecisionCause::QueuedEvent)),
        (None, Some(w)) => Some((w, DecisionCause::Wakeup)),
        (None, None) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapreduce_workload::{JobId, Phase};

    fn task(job: u64, phase: Phase, index: u32) -> TaskId {
        TaskId::new(JobId::new(job), phase, index)
    }

    fn finish(at: Slot, copy: u64) -> Event {
        Event::CopyFinish {
            at,
            copy: CopyId(copy),
            task: task(0, Phase::Map, copy as u32),
            seq: copy,
        }
    }

    #[test]
    fn events_pop_in_slot_order() {
        let mut q = EventQueue::new();
        q.push(Event::CopyFinish {
            at: 30,
            copy: CopyId(2),
            task: task(0, Phase::Map, 0),
            seq: 2,
        });
        q.push(Event::JobArrival {
            at: 10,
            job_index: 1,
        });
        q.push(Event::CopyFinish {
            at: 20,
            copy: CopyId(1),
            task: task(0, Phase::Map, 1),
            seq: 1,
        });
        assert_eq!(q.len(), 3);
        assert_eq!(q.peek_slot(), Some(10));
        let slots: Vec<Slot> =
            std::iter::from_fn(|| q.pop_due(Slot::MAX).map(|e| e.at())).collect();
        assert_eq!(slots, vec![10, 20, 30]);
        assert!(q.is_empty());
    }

    #[test]
    fn arrivals_precede_completions_at_the_same_slot() {
        let mut q = EventQueue::new();
        q.push(Event::CopyFinish {
            at: 5,
            copy: CopyId(0),
            task: task(0, Phase::Map, 0),
            seq: 0,
        });
        q.push(Event::JobArrival {
            at: 5,
            job_index: 9,
        });
        assert!(matches!(
            q.pop_due(5),
            Some(Event::JobArrival { job_index: 9, .. })
        ));
        assert!(matches!(q.pop_due(5), Some(Event::CopyFinish { .. })));
    }

    #[test]
    fn same_slot_completions_pop_in_copy_id_order() {
        // Map→Reduce precedence activation pushes reduce-copy completions in
        // task-index (and therefore copy-id) order; the queue must preserve
        // that order for determinism.
        let mut q = EventQueue::new();
        for copy in [3u64, 1, 2] {
            q.push(Event::CopyFinish {
                at: 7,
                copy: CopyId(copy),
                task: task(0, Phase::Reduce, copy as u32),
                seq: copy,
            });
        }
        let copies: Vec<u64> = std::iter::from_fn(|| {
            q.pop_due(7).map(|e| match e {
                Event::CopyFinish { copy, .. } => copy.0,
                _ => unreachable!(),
            })
        })
        .collect();
        assert_eq!(copies, vec![1, 2, 3]);
    }

    #[test]
    fn machine_events_sort_after_completions_and_by_machine() {
        // Within one instant: arrivals < completions < recoveries <
        // failures, machine index breaking ties — so a copy finishing
        // exactly when its machine crashes completes normally before the
        // crash lands, and a recovery at the failure instant of another
        // machine restores capacity first.
        let mut q = EventQueue::new();
        q.push(Event::MachineDown {
            at: 5,
            machine: 3,
            crash: true,
        });
        q.push(Event::MachineDown {
            at: 5,
            machine: 1,
            crash: false,
        });
        q.push(Event::MachineUp {
            at: 5,
            machine: 9,
            crash: true,
        });
        q.push(finish(5, 0));
        q.push(Event::JobArrival {
            at: 5,
            job_index: 4,
        });
        let keys: Vec<(u8, u64)> = std::iter::from_fn(|| {
            q.pop_due(5).map(|e| {
                let (slot, kind, seq) = e.key();
                assert_eq!(slot, 5);
                assert_eq!(e.at(), 5);
                (kind, seq)
            })
        })
        .collect();
        assert_eq!(keys, vec![(0, 4), (1, 0), (2, 9), (3, 1), (3, 3)]);
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.push(Event::JobArrival {
            at: 50,
            job_index: 0,
        });
        assert_eq!(q.pop_due(49), None);
        assert_eq!(q.len(), 1);
        assert!(q.pop_due(50).is_some());
    }

    #[test]
    fn far_future_events_overflow_and_return() {
        // Slots far beyond the ring window live in the overflow map and are
        // pulled back in as the window slides, preserving global order.
        let mut q = EventQueue::with_ring_bits(4); // 16-slot ring
        q.push(finish(1_000_000, 3));
        q.push(finish(5, 1));
        q.push(finish(40_000, 2));
        q.push(Event::JobArrival {
            at: 1_000_000,
            job_index: 7,
        });
        assert_eq!(q.peek_slot(), Some(5));
        let order: Vec<(Slot, u8)> = std::iter::from_fn(|| {
            q.pop_due(Slot::MAX).map(|e| {
                let (slot, kind, _) = e.key();
                (slot, kind)
            })
        })
        .collect();
        assert_eq!(
            order,
            vec![(5, 1), (40_000, 1), (1_000_000, 0), (1_000_000, 1)]
        );
        assert!(q.is_empty());
    }

    #[test]
    fn window_wraps_without_mixing_slots() {
        // Repeated push/pop cycles march the window far past the ring length;
        // bucket indices wrap but slots never alias.
        let mut q = EventQueue::with_ring_bits(4);
        let mut expected = Vec::new();
        let mut slot = 0;
        for copy in 0..200u64 {
            slot += 7; // strides across several wraps of the 16-slot ring
            q.push(finish(slot, copy));
            expected.push(slot);
            if copy % 3 == 0 {
                let popped = q.pop_due(Slot::MAX).unwrap();
                assert_eq!(popped.at(), expected.remove(0));
            }
        }
        let rest: Vec<Slot> = std::iter::from_fn(|| q.pop_due(Slot::MAX).map(|e| e.at())).collect();
        assert_eq!(rest, expected);
    }

    #[test]
    fn retracted_entries_still_fire_their_instant() {
        // Retract both entries of slot 20: the entries are compacted away but
        // the instant still fires (peek reports it, pop consumes it silently)
        // — exactly the trajectory the lazy-deletion engine produced.
        let mut q = EventQueue::new();
        q.push(finish(20, 1));
        q.push(finish(20, 2));
        q.push(finish(30, 3));
        q.retract(20, 1);
        q.retract(20, 2);
        let stats = q.stale_stats();
        assert_eq!(stats.retracted, 2);
        assert!(stats.compacted >= 1, "half-full bucket must compact");
        assert_eq!(q.peek_slot(), Some(20), "tombstoned instant must fire");
        assert!(!q.is_empty());
        // Popping at the tombstoned instant delivers nothing...
        assert_eq!(q.pop_due(20), None);
        // ...and consumes it: the next instant is the live one.
        assert_eq!(q.peek_slot(), Some(30));
        assert!(matches!(
            q.pop_due(30),
            Some(Event::CopyFinish {
                copy: CopyId(3),
                ..
            })
        ));
        assert!(q.is_empty());
    }

    #[test]
    fn retraction_below_threshold_is_lazy() {
        // One retraction out of three entries stays lazy (no compaction);
        // the stale entry is removed when the bucket drains and never
        // delivered.
        let mut q = EventQueue::new();
        for copy in 1..=5u64 {
            q.push(finish(10, copy));
        }
        q.retract(10, 2);
        assert_eq!(q.stale_stats().compacted, 0);
        let mut out = Vec::new();
        q.drain_due(10, &mut out);
        let copies: Vec<u64> = out
            .iter()
            .map(|e| match e {
                Event::CopyFinish { copy, .. } => copy.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(copies, vec![1, 3, 4, 5]);
        assert_eq!(q.stale_stats().compacted, 1);
        assert!(q.is_empty());
    }

    #[test]
    fn retraction_of_overflow_and_drained_slots() {
        let mut q = EventQueue::with_ring_bits(4);
        q.push(finish(100_000, 9)); // overflow
        q.retract(100_000, 9);
        assert_eq!(q.stale_stats().retracted, 1);
        // The overflow instant fires as a tombstone.
        assert_eq!(q.peek_slot(), Some(100_000));
        assert_eq!(q.pop_due(Slot::MAX), None);
        assert!(q.is_empty());
        // Retracting behind the drained position is counted and ignored.
        q.retract(5, 1);
        assert_eq!(q.stale_stats().late_retractions, 1);
    }

    #[test]
    fn drain_due_batches_whole_instants() {
        let mut q = EventQueue::new();
        q.push(finish(4, 2));
        q.push(finish(4, 1));
        q.push(Event::JobArrival {
            at: 4,
            job_index: 0,
        });
        q.push(finish(9, 3));
        let mut out = Vec::new();
        q.drain_due(4, &mut out);
        assert_eq!(out.len(), 3);
        assert!(matches!(out[0], Event::JobArrival { .. }));
        assert!(matches!(
            out[1],
            Event::CopyFinish {
                copy: CopyId(1),
                ..
            }
        ));
        assert!(matches!(
            out[2],
            Event::CopyFinish {
                copy: CopyId(2),
                ..
            }
        ));
        assert_eq!(q.len(), 1);
        assert_eq!(q.drained_to(), 4);
        out.clear();
        q.drain_due(100, &mut out);
        assert_eq!(out.len(), 1);
        assert!(q.is_empty());
    }

    #[test]
    fn same_slot_push_while_draining_keeps_order() {
        let mut q = EventQueue::new();
        q.push(finish(6, 1));
        q.push(finish(6, 5));
        assert!(matches!(
            q.pop_due(6),
            Some(Event::CopyFinish {
                copy: CopyId(1),
                ..
            })
        ));
        // Push into the bucket currently being drained.
        q.push(finish(6, 3));
        assert!(matches!(
            q.pop_due(6),
            Some(Event::CopyFinish {
                copy: CopyId(3),
                ..
            })
        ));
        assert!(matches!(
            q.pop_due(6),
            Some(Event::CopyFinish {
                copy: CopyId(5),
                ..
            })
        ));
        assert!(q.is_empty());
    }

    #[test]
    fn calendar_matches_heap_on_a_mixed_stream() {
        // Deterministic cross-check (the randomized version lives in the
        // integration proptests): interleave pushes and drains and compare
        // pop order against the frozen heap.
        let mut calendar = EventQueue::with_ring_bits(5);
        let mut heap = HeapEventQueue::new();
        let slots = [3u64, 3, 17, 90, 4, 17, 4096, 3, 64, 91, 4097, 5000];
        for (copy, &slot) in slots.iter().enumerate() {
            let e = finish(slot, copy as u64);
            calendar.push(e);
            heap.push(e);
        }
        for now in [3, 4, 17, 100, 6000] {
            loop {
                assert_eq!(calendar.peek_slot(), heap.peek_slot());
                let (a, b) = (calendar.pop_due(now), heap.pop_due(now));
                assert_eq!(a, b);
                if a.is_none() {
                    break;
                }
            }
        }
        assert!(calendar.is_empty() && heap.is_empty());
    }

    #[test]
    fn stale_sibling_finish_events_are_skipped() {
        // One 50-slot task whose clones resample a deterministic 10-slot
        // workload: the clone wins at slot 10, cancelling the original. The
        // original's finish event at slot 50 is retracted from the queue and
        // the run ends at makespan 10 with exactly one completion and
        // consistent machine accounting.
        use crate::config::SimConfig;
        use crate::engine::Simulation;
        use crate::schedulers::MaxCloneScheduler;
        use mapreduce_workload::{DurationDistribution, JobSpecBuilder, Trace};

        let job = JobSpecBuilder::new(JobId::new(0))
            .map_tasks_from_workloads(&[50.0])
            .map_distribution(DurationDistribution::Deterministic { value: 10.0 })
            .build();
        let trace = Trace::new(vec![job]).unwrap();
        let outcome = Simulation::new(SimConfig::new(2).with_seed(1), &trace)
            .run(&mut MaxCloneScheduler::new(2))
            .unwrap();
        let record = outcome.record(JobId::new(0)).unwrap();
        assert_eq!(record.completion, 10);
        assert_eq!(outcome.makespan, 10);
        assert_eq!(outcome.total_copies, 2);
        // 2 machines × 10 slots, both fully busy until first-copy-wins.
        assert_eq!(outcome.busy_machine_slots, 20);
    }

    #[test]
    fn first_copy_wins_frees_machines_for_waiting_work() {
        // Clone cancellation must release the sibling's machine immediately:
        // a second job that arrives while both machines are occupied by the
        // clones starts right at the winner's finish slot.
        use crate::config::SimConfig;
        use crate::engine::Simulation;
        use crate::schedulers::MaxCloneScheduler;
        use mapreduce_workload::{DurationDistribution, JobSpecBuilder, Trace};

        let cloned = JobSpecBuilder::new(JobId::new(0))
            .map_tasks_from_workloads(&[50.0])
            .map_distribution(DurationDistribution::Deterministic { value: 10.0 })
            .build();
        let waiter = JobSpecBuilder::new(JobId::new(1))
            .arrival(1)
            .map_tasks_from_workloads(&[5.0])
            .build();
        let trace = Trace::new(vec![cloned, waiter]).unwrap();
        let outcome = Simulation::new(SimConfig::new(2).with_seed(1), &trace)
            .run(&mut MaxCloneScheduler::new(2))
            .unwrap();
        // Winner finishes at 10, cancelling its sibling; both machines free →
        // the waiting job runs 10..15.
        assert_eq!(outcome.record(JobId::new(0)).unwrap().completion, 10);
        assert_eq!(outcome.record(JobId::new(1)).unwrap().completion, 15);
    }

    #[test]
    fn early_launched_reduce_copies_activate_when_map_completes() {
        // A scheduler that launches *everything* at slot 0 (as Algorithm 1
        // does): the reduce copies hold machines in WaitingForMapPhase. When
        // the map phase ends (slot 10) they activate — in task-index order,
        // per the queue's same-slot ordering — and run their full durations.
        use crate::config::SimConfig;
        use crate::engine::Simulation;
        use crate::state::{Action, ClusterState, Scheduler};

        struct LaunchEverything;
        impl Scheduler for LaunchEverything {
            fn name(&self) -> &str {
                "launch-everything"
            }
            fn schedule(&mut self, state: &ClusterState<'_>) -> Vec<Action> {
                let mut actions = Vec::new();
                for job in state.alive_jobs() {
                    for phase in Phase::ALL {
                        for task in job.unscheduled_tasks(phase) {
                            actions.push(Action::Launch {
                                task: task.id(),
                                copies: 1,
                            });
                        }
                    }
                }
                actions
            }
        }

        use mapreduce_workload::{JobSpecBuilder, Trace};
        let job = JobSpecBuilder::new(JobId::new(0))
            .map_tasks_from_workloads(&[10.0])
            .reduce_tasks_from_workloads(&[7.0, 3.0])
            .build();
        let trace = Trace::new(vec![job]).unwrap();
        let outcome = Simulation::new(SimConfig::new(8), &trace)
            .run(&mut LaunchEverything)
            .unwrap();
        // Map ends at 10; the longer reduce task determines completion: 17.
        assert_eq!(outcome.record(JobId::new(0)).unwrap().completion, 17);
        // Three copies (1 map + 2 reduce), no clones.
        assert_eq!(outcome.total_copies, 3);
        // Reduce copies held their machines from slot 0 while waiting:
        // busy = 10 (map) + 17 + 13 = 40 machine-slots.
        assert_eq!(outcome.busy_machine_slots, 40);
    }

    #[test]
    fn next_decision_prefers_queued_events_on_ties() {
        use DecisionCause::*;
        assert_eq!(next_decision(None, None), None);
        assert_eq!(next_decision(Some(5), None), Some((5, QueuedEvent)));
        assert_eq!(next_decision(None, Some(9)), Some((9, Wakeup)));
        assert_eq!(next_decision(Some(5), Some(9)), Some((5, QueuedEvent)));
        assert_eq!(next_decision(Some(9), Some(5)), Some((5, Wakeup)));
        assert_eq!(next_decision(Some(7), Some(7)), Some((7, QueuedEvent)));
    }
}
