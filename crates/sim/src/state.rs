//! Scheduler-facing view of the cluster: job and task state, the
//! [`ClusterState`] snapshot, the [`Action`] vocabulary and the [`Scheduler`]
//! trait.
//!
//! The engine owns all mutable state; schedulers only ever receive `&`
//! references and communicate decisions back through [`Action`] values, which
//! keeps every scheduling algorithm trivially deterministic and replayable.

use crate::copy::{CopyArena, CopyId, CopyList, CopyPhase};
use mapreduce_support::json::{FromJson, JsonError, JsonValue, ToJson};
use mapreduce_workload::{JobId, JobSpec, Phase, TaskId};

/// Simulated time, measured in slots (1 slot = 1 second at the paper's
/// default granularity).
pub type Slot = u64;

/// Scheduling status of a task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskStatus {
    /// No copy has been launched yet (the task counts towards `m_i(l)` /
    /// `r_i(l)` in the paper's notation).
    Unscheduled,
    /// At least one copy is active, none has finished.
    Scheduled,
    /// Some copy finished; the task is complete.
    Finished,
}

/// Per-task runtime state.
///
/// The copies themselves live in the run-level [`CopyArena`]; the task keeps
/// a small slice of [`CopyId`]s (typically one, a handful under cloning) plus
/// cached aggregates, so per-copy queries index the arena instead of owning
/// the records.
#[derive(Debug, Clone)]
pub struct TaskState {
    id: TaskId,
    workload: f64,
    status: TaskStatus,
    copies: CopyList,
    /// Cached number of copies currently occupying machines.
    active: usize,
    first_launched_at: Option<Slot>,
    finished_at: Option<Slot>,
    /// Cached earliest finish slot across this task's *running* copies.
    /// Mirrors `min_remaining(now) + now`; maintained by the engine so the
    /// per-phase running-by-finish index can locate entries without scanning
    /// the copy list. `None` while no copy is running.
    running_finish: Option<Slot>,
}

impl TaskState {
    pub(crate) fn new(id: TaskId, workload: f64) -> Self {
        TaskState {
            id,
            workload,
            status: TaskStatus::Unscheduled,
            copies: CopyList::default(),
            active: 0,
            first_launched_at: None,
            finished_at: None,
            running_finish: None,
        }
    }

    /// Identity of the task.
    pub fn id(&self) -> TaskId {
        self.id
    }

    /// The ground-truth workload of the original task attempt. Exposed for
    /// metrics and oracle baselines; the paper's schedulers must not use it.
    pub fn true_workload(&self) -> f64 {
        self.workload
    }

    /// Scheduling status.
    pub fn status(&self) -> TaskStatus {
        self.status
    }

    /// Whether no copy has been launched yet.
    pub fn is_unscheduled(&self) -> bool {
        self.status == TaskStatus::Unscheduled
    }

    /// Whether the task has completed.
    pub fn is_finished(&self) -> bool {
        self.status == TaskStatus::Finished
    }

    /// Ids of every copy ever launched for this task (active, finished or
    /// cancelled), in launch order. Resolve them through the run's
    /// [`CopyArena`] ([`ClusterState::copies`]).
    pub fn copies(&self) -> &[CopyId] {
        self.copies.as_slice()
    }

    /// Number of copies currently occupying machines. `O(1)`: the engine
    /// maintains the count across launches, completions and cancellations.
    pub fn active_copies(&self) -> usize {
        self.active
    }

    /// Slot of the first launch, if any.
    pub fn first_launched_at(&self) -> Option<Slot> {
        self.first_launched_at
    }

    /// Slot at which the task finished, if it has.
    pub fn finished_at(&self) -> Option<Slot> {
        self.finished_at
    }

    /// Best (largest) progress fraction across the task's copies at `now`.
    pub fn best_progress(&self, copies: &CopyArena, now: Slot) -> f64 {
        self.copies
            .as_slice()
            .iter()
            .map(|&id| copies.get(id))
            .filter(|c| c.phase() != CopyPhase::Cancelled)
            .map(|c| c.progress(now))
            .fold(0.0, f64::max)
    }

    /// Smallest remaining processing time across running copies at `now`
    /// (`None` if nothing is running).
    pub fn min_remaining(&self, copies: &CopyArena, now: Slot) -> Option<Slot> {
        self.copies
            .as_slice()
            .iter()
            .map(|&id| copies.get(id))
            .filter(|c| c.phase() == CopyPhase::Running)
            .map(|c| c.remaining(now))
            .min()
    }

    /// Elapsed processing time of the oldest active copy at `now`, zero if no
    /// copy is active. Detection-based schedulers use this as the "age" of
    /// the task attempt.
    pub fn oldest_active_elapsed(&self, copies: &CopyArena, now: Slot) -> Slot {
        self.copies
            .as_slice()
            .iter()
            .map(|&id| copies.get(id))
            .filter(|c| c.is_active())
            .map(|c| c.elapsed(now))
            .max()
            .unwrap_or(0)
    }

    // ----- engine-internal mutation -----

    pub(crate) fn add_copy(&mut self, id: CopyId, launched_at: Slot) {
        if self.first_launched_at.is_none() {
            self.first_launched_at = Some(launched_at);
        }
        if self.status == TaskStatus::Unscheduled {
            self.status = TaskStatus::Scheduled;
        }
        self.copies.push(id);
        self.active += 1;
    }

    /// Records that `count` of this task's copies left their machines
    /// (finished or cancelled).
    pub(crate) fn note_copies_released(&mut self, count: usize) {
        self.active = self.active.saturating_sub(count);
    }

    pub(crate) fn mark_finished(&mut self, at: Slot) {
        self.status = TaskStatus::Finished;
        self.finished_at = Some(at);
    }

    /// Returns the task to the unscheduled pool after a machine fault killed
    /// its last active copy. `first_launched_at` survives — the task *was*
    /// attempted; re-execution is a new attempt of the same task, and
    /// duration-based estimators (Mantri's `t_new`) keep measuring from the
    /// original launch.
    pub(crate) fn mark_unscheduled(&mut self) {
        debug_assert_eq!(self.active, 0, "unscheduling a task with active copies");
        debug_assert_ne!(
            self.status,
            TaskStatus::Finished,
            "unscheduling a finished task"
        );
        self.status = TaskStatus::Unscheduled;
        self.running_finish = None;
    }
}

/// Incrementally maintained per-phase bookkeeping of one job.
///
/// Invariants (maintained by the engine through the `note_*` mutators):
/// * `unscheduled` holds exactly the indices of tasks with
///   [`TaskStatus::Unscheduled`], sorted ascending.
/// * `running` holds exactly the indices of tasks with
///   [`TaskStatus::Scheduled`], sorted ascending.
/// * `running_by_finish` holds one `(finish, index)` entry per task that has
///   at least one copy in `CopyPhase::Running`, keyed by the earliest finish
///   slot across its running copies, sorted by `(finish, index)`.
/// * `completed_count` / `completed_duration_sum` aggregate, over finished
///   tasks, the wall-clock duration from first launch to completion (the
///   quantity Mantri's `t_new` estimator averages). Durations are integral
///   slots, so the incremental sum is exact and order-independent.
#[derive(Debug, Clone, Default)]
struct PhaseIndex {
    /// The live free-list is `unscheduled[unscheduled_head..]`; schedulers
    /// overwhelmingly launch tasks in free-list order, so consuming from the
    /// front advances the cursor (`O(1)`) instead of shifting the vector —
    /// `Vec::remove` is only paid for out-of-order launches.
    unscheduled: Vec<u32>,
    unscheduled_head: usize,
    running: Vec<u32>,
    running_by_finish: Vec<(Slot, u32)>,
    completed_count: usize,
    completed_duration_sum: u64,
}

impl PhaseIndex {
    fn with_tasks(count: usize) -> Self {
        PhaseIndex {
            unscheduled: (0..count as u32).collect(),
            ..PhaseIndex::default()
        }
    }

    /// The unscheduled task indices, sorted ascending.
    fn unscheduled(&self) -> &[u32] {
        &self.unscheduled[self.unscheduled_head..]
    }

    /// Removes `index` from the unscheduled free-list, if present.
    fn remove_unscheduled(&mut self, index: u32) {
        if let Ok(pos) = self.unscheduled().binary_search(&index) {
            if pos == 0 {
                self.unscheduled_head += 1;
            } else {
                self.unscheduled.remove(self.unscheduled_head + pos);
            }
        }
    }

    /// Re-inserts `index` into the unscheduled free-list (fault-driven
    /// re-execution). The live list is `unscheduled[unscheduled_head..]`,
    /// sorted; an index smaller than every live entry reuses the slot just
    /// behind the cursor (`O(1)`), anything else pays the sorted insert.
    fn insert_unscheduled(&mut self, index: u32) {
        match self.unscheduled().binary_search(&index) {
            Ok(_) => {}
            Err(pos) if pos == 0 && self.unscheduled_head > 0 => {
                self.unscheduled_head -= 1;
                self.unscheduled[self.unscheduled_head] = index;
            }
            Err(pos) => {
                self.unscheduled.insert(self.unscheduled_head + pos, index);
            }
        }
    }

    /// Frees the index storage while keeping the completed-duration
    /// aggregates (which stay readable on completed jobs).
    fn release(&mut self) {
        self.unscheduled = Vec::new();
        self.unscheduled_head = 0;
        self.running = Vec::new();
        self.running_by_finish = Vec::new();
    }
}

/// Which optional per-job indices the engine should maintain, declared by a
/// [`Scheduler`] through [`Scheduler::index_demands`].
///
/// Keeping a sorted index current costs `O(width)` memmove per launch and
/// completion, where width is the number of concurrently running tasks of a
/// job — a real tax on wide jobs (hundreds of tasks) under schedulers that
/// never read the index. The engine therefore maintains each one only when
/// the scheduler declares it. Hand-built [`JobState`]s (unit tests, scheduler
/// crates) maintain everything.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IndexDemands {
    /// Maintain the per-phase running free-list ([`JobState::running_tasks`],
    /// `running` in the phase index). Needed by LATE-style scans over running
    /// work.
    pub running_list: bool,
    /// Maintain the per-phase running-by-finish order
    /// ([`JobState::running_by_finish`]). Needed by Mantri-style straggler
    /// cutoffs.
    pub finish_index: bool,
}

impl IndexDemands {
    /// Every index maintained (the default for hand-built job states).
    pub const ALL: IndexDemands = IndexDemands {
        running_list: true,
        finish_index: true,
    };
}

/// Per-job runtime state: the static [`JobSpec`] plus the dynamic progress of
/// all its tasks.
#[derive(Debug, Clone)]
pub struct JobState {
    spec: JobSpec,
    arrived: bool,
    map_tasks: Vec<TaskState>,
    reduce_tasks: Vec<TaskState>,
    map_index: PhaseIndex,
    reduce_index: PhaseIndex,
    unfinished_map: usize,
    unfinished_reduce: usize,
    active_copies: usize,
    copies_launched: usize,
    completed_at: Option<Slot>,
    /// Reduce copies launched before the Map phase completed, as
    /// `(task index, copy id)` in launch order. Consumed wholesale when the
    /// Map phase finishes; entries whose copy was cancelled in the meantime
    /// are skipped at activation (the counter below stays exact).
    waiting_reduce: Vec<(u32, CopyId)>,
    /// Exact number of copies currently in
    /// [`CopyPhase::WaitingForMapPhase`].
    waiting_copies: usize,
    /// Which optional indices to keep current (see [`IndexDemands`]).
    track: IndexDemands,
}

impl JobState {
    /// Creates the initial (not yet arrived, nothing scheduled) runtime state
    /// for a job.
    ///
    /// The engine builds these internally; the constructor is public so that
    /// scheduler crates can unit-test their priority and sharing logic against
    /// hand-crafted job states without running a full simulation.
    pub fn new(spec: JobSpec) -> Self {
        let map_tasks: Vec<TaskState> = spec
            .map_tasks
            .iter()
            .map(|t| TaskState::new(t.id, t.workload))
            .collect();
        let reduce_tasks: Vec<TaskState> = spec
            .reduce_tasks
            .iter()
            .map(|t| TaskState::new(t.id, t.workload))
            .collect();
        let unfinished_map = map_tasks.len();
        let unfinished_reduce = reduce_tasks.len();
        JobState {
            arrived: false,
            map_index: PhaseIndex::with_tasks(unfinished_map),
            reduce_index: PhaseIndex::with_tasks(unfinished_reduce),
            unfinished_map,
            unfinished_reduce,
            active_copies: 0,
            copies_launched: 0,
            completed_at: None,
            waiting_reduce: Vec::new(),
            waiting_copies: 0,
            track: IndexDemands::ALL,
            map_tasks,
            reduce_tasks,
            spec,
        }
    }

    /// Restricts which optional indices are maintained; the engine calls this
    /// once per run with the scheduler's [`Scheduler::index_demands`].
    pub(crate) fn set_index_tracking(&mut self, demands: IndexDemands) {
        self.track = demands;
    }

    fn phase_index(&self, phase: Phase) -> &PhaseIndex {
        match phase {
            Phase::Map => &self.map_index,
            Phase::Reduce => &self.reduce_index,
        }
    }

    fn phase_index_mut(&mut self, phase: Phase) -> &mut PhaseIndex {
        match phase {
            Phase::Map => &mut self.map_index,
            Phase::Reduce => &mut self.reduce_index,
        }
    }

    /// Identity of the job.
    pub fn id(&self) -> JobId {
        self.spec.id
    }

    /// Weight `w_i` of the job.
    pub fn weight(&self) -> f64 {
        self.spec.weight
    }

    /// Arrival slot `a_i`.
    pub fn arrival(&self) -> Slot {
        self.spec.arrival
    }

    /// The full static job description (task counts, phase statistics, …).
    pub fn spec(&self) -> &JobSpec {
        &self.spec
    }

    /// Whether the job has arrived at the cluster.
    pub fn has_arrived(&self) -> bool {
        self.arrived
    }

    /// Whether every task of the job has finished.
    pub fn is_complete(&self) -> bool {
        self.completed_at.is_some()
    }

    /// Whether the job has arrived and still has unfinished tasks.
    pub fn is_alive(&self) -> bool {
        self.arrived && !self.is_complete()
    }

    /// Slot at which the job completed, if it has.
    pub fn completed_at(&self) -> Option<Slot> {
        self.completed_at
    }

    /// Whether every map task has finished (the precedence gate for the
    /// Reduce phase).
    pub fn map_phase_complete(&self) -> bool {
        self.unfinished_map == 0
    }

    /// Task states of a phase.
    pub fn tasks(&self, phase: Phase) -> &[TaskState] {
        match phase {
            Phase::Map => &self.map_tasks,
            Phase::Reduce => &self.reduce_tasks,
        }
    }

    /// A single task state.
    pub fn task(&self, phase: Phase, index: u32) -> Option<&TaskState> {
        self.tasks(phase).get(index as usize)
    }

    /// Number of tasks of `phase` that have not been launched yet
    /// (`m_i(l)` / `r_i(l)` in the paper).
    pub fn num_unscheduled(&self, phase: Phase) -> usize {
        self.phase_index(phase).unscheduled().len()
    }

    /// Total number of unscheduled tasks across both phases (`c_i(l)`).
    pub fn total_unscheduled(&self) -> usize {
        self.map_index.unscheduled().len() + self.reduce_index.unscheduled().len()
    }

    /// Number of unscheduled tasks a scheduler could usefully launch *now*:
    /// unscheduled map tasks first; unscheduled reduce tasks only once the
    /// map phase completed (copies launched earlier just park in the waiting
    /// list). Mirrors the phase selection of SRPTMS+C's task-scheduling
    /// procedure.
    pub fn launchable_unscheduled(&self) -> usize {
        let maps = self.num_unscheduled(Phase::Map);
        if maps > 0 {
            maps
        } else if self.map_phase_complete() {
            self.num_unscheduled(Phase::Reduce)
        } else {
            0
        }
    }

    /// Number of tasks of `phase` that have not finished yet.
    pub fn num_unfinished(&self, phase: Phase) -> usize {
        match phase {
            Phase::Map => self.unfinished_map,
            Phase::Reduce => self.unfinished_reduce,
        }
    }

    /// Ids of the unscheduled tasks of a phase, in index order. Schedulers
    /// that want the paper's "choose at random" behaviour can pick any subset;
    /// the engine does not care which unscheduled task is launched first.
    ///
    /// Backed by the per-phase free-list: iteration is `O(unscheduled)`, not
    /// `O(tasks)`.
    pub fn unscheduled_tasks(&self, phase: Phase) -> impl Iterator<Item = &TaskState> {
        let tasks = self.tasks(phase);
        self.phase_index(phase)
            .unscheduled()
            .iter()
            .map(move |&i| &tasks[i as usize])
    }

    /// Indices of the unscheduled tasks of a phase, sorted ascending.
    ///
    /// The cheapest way for a scheduler to enumerate launchable work: build a
    /// [`mapreduce_workload::TaskId`] from the job id, the phase and an index.
    pub fn unscheduled_indices(&self, phase: Phase) -> &[u32] {
        self.phase_index(phase).unscheduled()
    }

    /// Tasks of a phase that are scheduled (running) but not finished.
    ///
    /// Backed by the per-phase free-list: iteration is `O(running)`, not
    /// `O(tasks)`. Maintained only when the scheduler declares
    /// [`IndexDemands::running_list`] (empty otherwise).
    pub fn running_tasks(&self, phase: Phase) -> impl Iterator<Item = &TaskState> {
        debug_assert!(
            self.track.running_list,
            "running_tasks read without declaring IndexDemands::running_list"
        );
        let tasks = self.tasks(phase);
        self.phase_index(phase)
            .running
            .iter()
            .map(move |&i| &tasks[i as usize])
    }

    /// `(finish_slot, task_index)` entries for every task of `phase` that has
    /// at least one copy currently running, keyed by the earliest finish slot
    /// across its running copies and sorted by `(finish_slot, index)`.
    ///
    /// Detection-based schedulers (Mantri) use `partition_point` on this
    /// slice to examine only the straggler tail instead of rescanning every
    /// running task on every wakeup. Maintained only when the scheduler
    /// declares [`IndexDemands::finish_index`] (empty otherwise).
    pub fn running_by_finish(&self, phase: Phase) -> &[(Slot, u32)] {
        debug_assert!(
            self.track.finish_index,
            "running_by_finish read without declaring IndexDemands::finish_index"
        );
        &self.phase_index(phase).running_by_finish
    }

    /// `(count, total_duration)` over the finished tasks of `phase`, where a
    /// task's duration is the slots from its first launch to its completion.
    pub fn completed_duration_stats(&self, phase: Phase) -> (usize, u64) {
        let index = self.phase_index(phase);
        (index.completed_count, index.completed_duration_sum)
    }

    /// Mean observed duration (first launch to completion) of the finished
    /// tasks of `phase`, or `None` if nothing has finished yet. `O(1)`: the
    /// aggregate is maintained incrementally as tasks complete.
    pub fn mean_completed_duration(&self, phase: Phase) -> Option<f64> {
        let index = self.phase_index(phase);
        if index.completed_count > 0 {
            Some(index.completed_duration_sum as f64 / index.completed_count as f64)
        } else {
            None
        }
    }

    /// Number of machines currently occupied by this job's copies
    /// (`σ_i(l)` in the paper).
    pub fn active_copies(&self) -> usize {
        self.active_copies
    }

    /// Number of this job's copies currently waiting for the Map phase
    /// (reduce copies launched early). `O(1)`; lets the engine skip the
    /// activation pass entirely for jobs that never launched a reduce copy
    /// ahead of its precedence constraint.
    pub fn waiting_copies(&self) -> usize {
        self.waiting_copies
    }

    /// Total number of copies launched for this job so far (original attempts
    /// plus clones plus speculative backups).
    pub fn copies_launched(&self) -> usize {
        self.copies_launched
    }

    /// The remaining effective workload `U_i(l)` of Equation (4):
    /// `m_i(l)·(E^m + rσ^m) + r_i(l)·(E^r + rσ^r)`, where `m_i(l)` and
    /// `r_i(l)` count *unscheduled* tasks.
    pub fn remaining_effective_workload(&self, r: f64) -> f64 {
        self.map_index.unscheduled().len() as f64 * self.spec.map_stats.effective_task_workload(r)
            + self.reduce_index.unscheduled().len() as f64
                * self.spec.reduce_stats.effective_task_workload(r)
    }

    /// The total effective workload `φ_i` of Equation (2) (static, ignores
    /// progress).
    pub fn total_effective_workload(&self, r: f64) -> f64 {
        self.spec.effective_workload(r)
    }

    // ----- engine-internal mutation -----

    pub(crate) fn mark_arrived(&mut self) {
        self.arrived = true;
    }

    pub(crate) fn task_mut(&mut self, phase: Phase, index: u32) -> Option<&mut TaskState> {
        match phase {
            Phase::Map => self.map_tasks.get_mut(index as usize),
            Phase::Reduce => self.reduce_tasks.get_mut(index as usize),
        }
    }

    /// Records the first launch of task `index`: moves it from the
    /// unscheduled free-list to the running free-list (the latter only when
    /// the scheduler demands it).
    pub(crate) fn note_first_launch(&mut self, phase: Phase, index: u32) {
        let track_running = self.track.running_list;
        let pi = self.phase_index_mut(phase);
        pi.remove_unscheduled(index);
        if track_running {
            if let Err(pos) = pi.running.binary_search(&index) {
                pi.running.insert(pos, index);
            }
        }
    }

    pub(crate) fn note_copy_launched(&mut self) {
        self.active_copies += 1;
        self.copies_launched += 1;
    }

    pub(crate) fn note_copy_released(&mut self, count: usize) {
        self.active_copies = self.active_copies.saturating_sub(count);
    }

    /// Records a reduce copy launched ahead of the Map phase: it joins the
    /// per-job waiting list the activation pass consumes.
    pub(crate) fn note_copy_waiting(&mut self, index: u32, id: CopyId) {
        self.waiting_reduce.push((index, id));
        self.waiting_copies += 1;
    }

    /// Records the cancellation of `count` waiting copies (their entries in
    /// the waiting list go stale and are skipped at activation).
    pub(crate) fn note_waiting_cancelled(&mut self, count: usize) {
        self.waiting_copies = self.waiting_copies.saturating_sub(count);
    }

    /// Hands the waiting-copy list to the caller (swapping in `into`'s
    /// storage so the allocation is reused) and zeroes the counter. Called by
    /// the engine exactly when the Map phase completes.
    pub(crate) fn take_waiting_reduce(&mut self, into: &mut Vec<(u32, CopyId)>) {
        into.clear();
        std::mem::swap(&mut self.waiting_reduce, into);
        self.waiting_copies = 0;
    }

    /// Records that a copy of task `index` started running and will finish at
    /// `finish` unless cancelled: keeps the running-by-finish index keyed by
    /// the task's earliest running finish slot.
    pub(crate) fn note_copy_running(&mut self, phase: Phase, index: u32, finish: Slot) {
        if !self.track.finish_index {
            return;
        }
        let old = match self.task(phase, index) {
            Some(task) => task.running_finish,
            None => return,
        };
        let pi = self.phase_index_mut(phase);
        match old {
            Some(old) if finish >= old => return,
            Some(old) => {
                if let Ok(pos) = pi.running_by_finish.binary_search(&(old, index)) {
                    pi.running_by_finish.remove(pos);
                }
            }
            None => {}
        }
        if let Err(pos) = pi.running_by_finish.binary_search(&(finish, index)) {
            pi.running_by_finish.insert(pos, (finish, index));
        }
        if let Some(task) = self.task_mut(phase, index) {
            task.running_finish = Some(finish);
        }
    }

    /// Re-keys (or drops) task `index` in the running-by-finish index after
    /// copies were cancelled; `new_finish` is the earliest finish slot across
    /// the copies still running, if any.
    pub(crate) fn refresh_running_finish(
        &mut self,
        phase: Phase,
        index: u32,
        new_finish: Option<Slot>,
    ) {
        if !self.track.finish_index {
            return;
        }
        let old = match self.task(phase, index) {
            Some(task) => task.running_finish,
            None => return,
        };
        if old == new_finish {
            return;
        }
        let pi = self.phase_index_mut(phase);
        if let Some(old) = old {
            if let Ok(pos) = pi.running_by_finish.binary_search(&(old, index)) {
                pi.running_by_finish.remove(pos);
            }
        }
        if let Some(finish) = new_finish {
            if let Err(pos) = pi.running_by_finish.binary_search(&(finish, index)) {
                pi.running_by_finish.insert(pos, (finish, index));
            }
        }
        if let Some(task) = self.task_mut(phase, index) {
            task.running_finish = new_finish;
        }
    }

    /// Records the completion of task `index`: removes it from the running
    /// free-list and the running-by-finish index and folds its observed
    /// duration (first launch to completion) into the phase aggregates.
    pub(crate) fn note_task_finished(&mut self, phase: Phase, index: u32, duration: Slot) {
        match phase {
            Phase::Map => self.unfinished_map = self.unfinished_map.saturating_sub(1),
            Phase::Reduce => self.unfinished_reduce = self.unfinished_reduce.saturating_sub(1),
        }
        let old = self.task(phase, index).and_then(|t| t.running_finish);
        let track_running = self.track.running_list;
        let pi = self.phase_index_mut(phase);
        if track_running {
            if let Ok(pos) = pi.running.binary_search(&index) {
                pi.running.remove(pos);
            }
        }
        if let Some(old) = old {
            if let Ok(pos) = pi.running_by_finish.binary_search(&(old, index)) {
                pi.running_by_finish.remove(pos);
            }
        }
        pi.completed_count += 1;
        pi.completed_duration_sum += duration;
        if let Some(task) = self.task_mut(phase, index) {
            task.running_finish = None;
        }
    }

    /// Reverse of [`JobState::note_first_launch`]: a machine fault killed the
    /// last active copy of task `index`, so it returns to the unscheduled
    /// pool and will be re-launched by the scheduler (work lost, not the
    /// job). Call *after* the copy-release counters have been updated; the
    /// next launch re-fires `note_first_launch` symmetrically.
    pub(crate) fn note_task_unlaunched(&mut self, phase: Phase, index: u32) {
        let old_finish = self.task(phase, index).and_then(|t| t.running_finish);
        if let Some(task) = self.task_mut(phase, index) {
            task.mark_unscheduled();
        }
        let track_running = self.track.running_list;
        let pi = self.phase_index_mut(phase);
        pi.insert_unscheduled(index);
        if track_running {
            if let Ok(pos) = pi.running.binary_search(&index) {
                pi.running.remove(pos);
            }
        }
        if let Some(old) = old_finish {
            if let Ok(pos) = pi.running_by_finish.binary_search(&(old, index)) {
                pi.running_by_finish.remove(pos);
            }
        }
    }

    pub(crate) fn all_tasks_finished(&self) -> bool {
        self.unfinished_map == 0 && self.unfinished_reduce == 0
    }

    pub(crate) fn mark_complete(&mut self, at: Slot) {
        self.completed_at = Some(at);
    }

    /// Releases the per-task storage of a completed job: task-state vectors
    /// (including their copy-id lists), phase free-lists, the waiting list,
    /// and the spec's task vectors and distributions. The scalar summary the
    /// engine and schedulers may still read on a finished job — id, arrival,
    /// weight, phase stats, completion slot, copy counters, completed-
    /// duration aggregates — survives.
    ///
    /// This is what bounds a streaming run's memory to the *alive window*
    /// instead of the whole workload: the engine calls it the moment a job
    /// completes, right after capturing its [`crate::result::JobRecord`].
    pub(crate) fn release_storage(&mut self) {
        debug_assert!(self.is_complete(), "only completed jobs are released");
        self.map_tasks = Vec::new();
        self.reduce_tasks = Vec::new();
        self.map_index.release();
        self.reduce_index.release();
        self.waiting_reduce = Vec::new();
        self.spec.map_tasks = Vec::new();
        self.spec.reduce_tasks = Vec::new();
        self.spec.map_distribution = None;
        self.spec.reduce_distribution = None;
    }
}

/// The priority half of an [`AliveIndex`]: alive jobs that still have
/// unscheduled tasks, kept in decreasing `w_i / U_i(l)` order — in a
/// `BTreeSet` maintained **across** decision instants, consumed on demand.
///
/// The 1M-job tier exposed the regime this structure is built for: with
/// `ε = 0.6` and mostly unit job weights, the ε-fraction share walk consumes
/// ~60 % of ψ^s at *every* decision instant (up to 1 933 of ~3 000 ranked
/// entries across 712 668 instants), and since nearly every instant launches
/// something — re-keying the launched jobs — nearly every instant dirties the
/// order. Any scheme that re-establishes the order per dirty instant
/// (a full sort, a `select_nth_unstable_by` partition, a lazy-deletion heap
/// re-popped per instant) therefore pays `O(alive)`-ish work 712 668 times.
/// The search tree instead pays `O(log n)` *per key change* (a handful per
/// instant) and amortised `O(1)` per consumed entry for the in-order walk —
/// nothing is ever re-sorted.
///
/// Invariants:
/// * `key[idx]` is job `idx`'s current priority; `NaN` marks jobs that are
///   not in the order (completed, or with every task already scheduled).
/// * `set` holds `(sort_key(key[idx]), idx)` for exactly the live jobs,
///   where [`PriorityIndex::sort_key`] maps `f64` bits to a `u64` whose
///   natural ascending order is `total_cmp`-**descending** — so the set's
///   iteration order is precisely the `(key desc, idx asc)` ranking, entry
///   for entry identical to the full stable sort the eager implementation
///   materialised. Every key change removes the old pair and inserts the
///   new one immediately; the set never holds stale entries.
/// * `eff[idx]` caches the per-phase `effective_task_workload(r)` of the
///   job's spec, so re-keying a job after a launch is two multiply-adds and
///   never recomputes the phase statistics.
/// * `prefix` caches the entries walked this instant, so repeated reads and
///   the random-access [`PriorityIndex::entry`] API cost array lookups; it
///   is re-validated (cleared) by `flush` once mutations have occurred. The
///   walk resumes after the last cached entry with one `O(log n)` range
///   seek, extending geometrically so a sequential consumer pays
///   `O(log prefix)` seeks per instant, not one per entry.
#[derive(Debug, Default, Clone)]
struct PriorityIndex {
    r: f64,
    /// The ranking itself: `(descending-order key bits, idx)`, always live.
    set: std::collections::BTreeSet<(u64, u32)>,
    /// Entries walked this instant, in ranking order; interior-mutable
    /// because consumption happens on demand while the scheduler holds the
    /// snapshot by shared reference.
    prefix: std::cell::RefCell<Vec<(f64, u32)>>,
    key: Vec<f64>,
    eff: Vec<(f64, f64)>,
    dirty: bool,
}

impl PriorityIndex {
    /// Maps a (non-`NaN`) key to a `u64` whose ascending natural order is
    /// the key's `total_cmp`-**descending** order: the sign-magnitude bit
    /// trick that makes float bits integer-comparable, complemented. Ties in
    /// the set then fall through to the ascending `idx` — exactly the
    /// ranking's tiebreak.
    fn sort_key(key: f64) -> u64 {
        let bits = key.to_bits();
        let ascending = if bits & (1 << 63) != 0 {
            !bits
        } else {
            bits | (1 << 63)
        };
        !ascending
    }

    fn ensure_slot(&mut self, idx: usize) {
        if self.key.len() <= idx {
            self.key.resize(idx + 1, f64::NAN);
            self.eff.resize(idx + 1, (0.0, 0.0));
        }
    }

    /// The online priority `w_i / U_i(l)` from the cached per-phase effective
    /// task workloads; bit-identical to
    /// `priority::online_priority(job, r)` computed from scratch.
    fn key_for(&self, idx: usize, job: &JobState) -> f64 {
        let (eff_map, eff_reduce) = self.eff[idx];
        let u = job.num_unscheduled(Phase::Map) as f64 * eff_map
            + job.num_unscheduled(Phase::Reduce) as f64 * eff_reduce;
        if u > 0.0 {
            job.weight() / u
        } else {
            f64::INFINITY
        }
    }

    fn insert(&mut self, idx: usize, job: &JobState) {
        self.ensure_slot(idx);
        self.eff[idx] = (
            job.spec().map_stats.effective_task_workload(self.r),
            job.spec().reduce_stats.effective_task_workload(self.r),
        );
        if job.total_unscheduled() == 0 {
            self.key[idx] = f64::NAN;
            return;
        }
        let key = self.key_for(idx, job);
        self.key[idx] = key;
        if key.is_nan() {
            // A NaN priority (NaN weight) never enters the order; the eager
            // implementation dropped such entries at the next flush, before
            // any read could observe them.
            return;
        }
        self.set.insert((Self::sort_key(key), idx as u32));
        self.dirty = true;
    }

    fn remove(&mut self, idx: usize) {
        if self.key.len() <= idx || self.key[idx].is_nan() {
            return;
        }
        // `key[idx]` was live, so the set holds exactly this pair for the
        // idx (every key change replaces the pair immediately).
        self.set
            .remove(&(Self::sort_key(self.key[idx]), idx as u32));
        self.key[idx] = f64::NAN;
        self.dirty = true;
    }

    /// Re-keys job `idx` after its unscheduled counts changed: one
    /// `O(log n)` removal plus (while still live) one `O(log n)` insertion.
    /// The job drops out of the order once nothing is left to schedule; a
    /// machine fault that returns a task to the unscheduled pool re-enters
    /// it through [`PriorityIndex::insert`].
    fn update(&mut self, idx: usize, job: &JobState) {
        if self.key.len() <= idx || self.key[idx].is_nan() {
            return;
        }
        let key = if job.total_unscheduled() == 0 {
            f64::NAN
        } else {
            self.key_for(idx, job)
        };
        self.set
            .remove(&(Self::sort_key(self.key[idx]), idx as u32));
        if !key.is_nan() {
            self.set.insert((Self::sort_key(key), idx as u32));
        }
        self.key[idx] = key;
        self.dirty = true;
    }

    /// Starts a fresh decision instant: drops the walked-prefix cache if any
    /// mutation happened since it was established. `O(1)` — the set itself
    /// is always current, so there is nothing to rebuild.
    fn flush(&mut self) {
        if !self.dirty {
            // Nothing moved since the prefix was walked; keep it.
            return;
        }
        self.prefix.get_mut().clear();
        self.dirty = false;
    }

    /// Number of live entries — the length of the order.
    fn live_len(&self) -> usize {
        self.set.len()
    }

    /// The `i`-th entry of the fully sorted live order, extending the
    /// walked-prefix cache on demand: one range seek after the last cached
    /// entry, then in-order steps (amortised `O(1)` each), geometrically
    /// overshooting the requested index so sequential consumption performs
    /// `O(log prefix)` seeks per instant. Callers guarantee
    /// `i < live_len()`.
    fn entry(&self, i: usize) -> (f64, usize) {
        let mut prefix = self.prefix.borrow_mut();
        if i >= prefix.len() {
            let want = (i + 1).max(prefix.len() * 2).max(16);
            let mut walk = match prefix.last() {
                Some(&(key, idx)) => self.set.range((
                    std::ops::Bound::Excluded((Self::sort_key(key), idx)),
                    std::ops::Bound::Unbounded,
                )),
                None => self.set.range(..),
            };
            while prefix.len() < want {
                let Some(&(sort_key, idx)) = walk.next() else {
                    break;
                };
                let key = self.key[idx as usize];
                debug_assert_eq!(Self::sort_key(key), sort_key);
                prefix.push((key, idx));
            }
        }
        let (key, idx) = prefix[i];
        (key, idx as usize)
    }
}

/// Demand-gated view over an enabled priority order: the `(priority, idx)`
/// entries of the alive jobs with unscheduled tasks, in decreasing
/// `w_i / U_i(l)` order (ties by ascending idx).
///
/// Reads are lazy — [`RankedEntries::entry`] pops the underlying stamp heap
/// only as far into the order as is actually consumed, which is what makes
/// SRPTMS+C's decision path pay-for-what-you-read at million-job scale. The
/// visible order is entry-for-entry identical to a full sort; indices
/// resolve through [`ClusterState::job_at`].
#[derive(Clone, Copy, Debug)]
pub struct RankedEntries<'a> {
    index: &'a PriorityIndex,
}

impl<'a> RankedEntries<'a> {
    /// Number of entries in the (virtual) full order.
    pub fn len(&self) -> usize {
        self.index.live_len()
    }

    /// Whether the order is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `i`-th `(priority, idx)` entry of the order.
    ///
    /// # Panics
    /// Panics if `i >= self.len()`.
    pub fn entry(&self, i: usize) -> (f64, usize) {
        assert!(
            i < self.len(),
            "ranked entry {i} out of bounds (len {})",
            self.len()
        );
        self.index.entry(i)
    }

    /// Iterates the order front to back, extending the sorted region as it
    /// goes — stop early and the tail is never sorted.
    pub fn iter(&self) -> impl Iterator<Item = (f64, usize)> + 'a {
        let this = *self;
        (0..this.len()).map(move |i| this.entry(i))
    }
}

/// Incrementally maintained index over the alive jobs of a simulation.
///
/// The engine used to rebuild a `Vec` of alive job indices (and any aggregate
/// a scheduler needed, like the total alive weight) from a `BTreeSet` on
/// *every* scheduler wakeup — an `O(alive)` scan per decision instant that
/// dominates at 12 000-machine trace scale. This index is updated once per
/// arrival, completion and first task launch instead, so constructing a
/// [`ClusterState`] is `O(1)`.
///
/// Besides the id-ordered alive set and the weight/unscheduled aggregates,
/// the index maintains two derived orders so schedulers never sort per
/// wakeup:
/// * an **arrival order** (`(arrival, idx)` ascending) consumed by the FIFO
///   family, and
/// * an optional **priority order** (decreasing `w_i / U_i(l)`, enabled via
///   [`AliveIndex::enable_priority`] when the scheduler declares a pessimism
///   factor through [`Scheduler::priority_r`]) consumed by SRPTMS+C.
#[derive(Debug, Default, Clone)]
pub struct AliveIndex {
    /// Alive job indices, kept sorted ascending (job-id order).
    alive: Vec<usize>,
    /// Alive jobs sorted by `(arrival, idx)` ascending.
    by_arrival: Vec<(Slot, usize)>,
    /// Sum of the weights of the alive jobs (`W(l)`).
    weight_sum: f64,
    /// Total number of unscheduled tasks across alive jobs.
    unscheduled_sum: usize,
    /// Sum of the weights of the alive jobs that still have unscheduled
    /// tasks — `W(l)` over `ψ^s(l)`, the candidate set of the ε-fraction
    /// rule. Maintained in `O(1)`: added on arrival, subtracted when the
    /// job's last unscheduled task launches, re-added if a machine fault
    /// returns one of its tasks to the unscheduled pool.
    unscheduled_weight_sum: f64,
    /// Whether job `idx`'s weight is currently counted in
    /// `unscheduled_weight_sum`, so completion/launch can subtract at most
    /// once per job.
    weight_counted: Vec<bool>,
    /// Per-job cached [`JobState::launchable_unscheduled`] counts, feeding
    /// `launchable_sum`. Maintained only while the priority order is enabled
    /// (its sole consumer is SRPTMS+C's backfill early-exit).
    launchable: Vec<usize>,
    /// Total launchable unscheduled tasks across alive jobs.
    launchable_sum: usize,
    /// Priority order, present when enabled.
    priority: Option<PriorityIndex>,
}

impl AliveIndex {
    /// An empty index.
    pub fn new() -> Self {
        AliveIndex::default()
    }

    /// Enables maintenance of the priority order for pessimism factor `r`.
    /// Must be called before any job is inserted.
    pub fn enable_priority(&mut self, r: f64) {
        self.priority = Some(PriorityIndex {
            r,
            ..PriorityIndex::default()
        });
    }

    /// Records the arrival of job `idx`.
    pub fn insert(&mut self, idx: usize, job: &JobState) {
        if let Err(pos) = self.alive.binary_search(&idx) {
            self.alive.insert(pos, idx);
            self.weight_sum += job.weight();
            self.unscheduled_sum += job.total_unscheduled();
            if job.total_unscheduled() > 0 {
                if self.weight_counted.len() <= idx {
                    self.weight_counted.resize(idx + 1, false);
                }
                self.weight_counted[idx] = true;
                self.unscheduled_weight_sum += job.weight();
            }
            let arrival_entry = (job.arrival(), idx);
            if let Err(pos) = self.by_arrival.binary_search(&arrival_entry) {
                self.by_arrival.insert(pos, arrival_entry);
            }
            if let Some(priority) = &mut self.priority {
                priority.insert(idx, job);
                self.refresh_launchable(idx, job);
            }
        }
    }

    /// Records the completion of job `idx` (all of whose tasks have been
    /// scheduled and finished by then).
    pub fn remove(&mut self, idx: usize, job: &JobState) {
        if let Ok(pos) = self.alive.binary_search(&idx) {
            self.alive.remove(pos);
            self.weight_sum -= job.weight();
            // Normally already uncounted by `note_first_launch` (a job only
            // completes after every task launched), but hand-driven indices
            // may remove a job that never launched.
            if self.weight_counted.get(idx).copied().unwrap_or(false) {
                self.weight_counted[idx] = false;
                self.unscheduled_weight_sum -= job.weight();
            }
            if let Ok(pos) = self.by_arrival.binary_search(&(job.arrival(), idx)) {
                self.by_arrival.remove(pos);
            }
            if let Some(priority) = &mut self.priority {
                priority.remove(idx);
                if let Some(cached) = self.launchable.get_mut(idx) {
                    self.launchable_sum -= *cached;
                    *cached = 0;
                }
            }
        }
    }

    /// Records the first launch of one previously unscheduled task of job
    /// `idx`; call *after* the job's own counters have been updated. `O(1)` —
    /// the priority order itself is refreshed by [`AliveIndex::flush_priority`]
    /// once per decision instant.
    pub fn note_first_launch(&mut self, idx: usize, job: &JobState) {
        self.unscheduled_sum = self.unscheduled_sum.saturating_sub(1);
        if job.total_unscheduled() == 0 && self.weight_counted.get(idx).copied().unwrap_or(false) {
            // Last unscheduled task launched: the job leaves ψ^s(l) for good.
            self.weight_counted[idx] = false;
            self.unscheduled_weight_sum -= job.weight();
        }
        if let Some(priority) = &mut self.priority {
            priority.update(idx, job);
            self.refresh_launchable(idx, job);
        }
    }

    /// Reverse of [`AliveIndex::note_first_launch`]: a fault returned one
    /// task of job `idx` to the unscheduled pool. Call *after*
    /// [`JobState::note_task_unlaunched`] updated the job's own counters.
    /// The job re-enters `ψ^s(l)` (the unscheduled-weight aggregate and, if
    /// enabled, the priority order) if this was its first unscheduled task.
    pub fn note_task_unlaunched(&mut self, idx: usize, job: &JobState) {
        self.unscheduled_sum += 1;
        if job.total_unscheduled() > 0 && !self.weight_counted.get(idx).copied().unwrap_or(false) {
            if self.weight_counted.len() <= idx {
                self.weight_counted.resize(idx + 1, false);
            }
            self.weight_counted[idx] = true;
            self.unscheduled_weight_sum += job.weight();
        }
        if let Some(priority) = &mut self.priority {
            // A job whose every task had launched carries a NaN key (it left
            // the order); re-enter through `insert`, otherwise re-key.
            if priority.key.len() <= idx || priority.key[idx].is_nan() {
                priority.insert(idx, job);
            } else {
                priority.update(idx, job);
            }
            self.refresh_launchable(idx, job);
        }
    }

    /// Records that job `idx`'s map phase just completed (its unscheduled
    /// reduce tasks became launchable); call from the engine's copy-finish
    /// path. `O(1)`, idempotent, no-op when priority maintenance is off.
    pub fn note_map_phase_complete(&mut self, idx: usize, job: &JobState) {
        if self.priority.is_some() {
            self.refresh_launchable(idx, job);
        }
    }

    /// Re-caches job `idx`'s launchable-unscheduled count and folds the
    /// difference into the aggregate.
    fn refresh_launchable(&mut self, idx: usize, job: &JobState) {
        if self.launchable.len() <= idx {
            self.launchable.resize(idx + 1, 0);
        }
        let fresh = job.launchable_unscheduled();
        self.launchable_sum = self.launchable_sum + fresh - self.launchable[idx];
        self.launchable[idx] = fresh;
    }

    /// Re-establishes the priority order after a batch of events; the engine
    /// calls this once per decision instant, right before building the
    /// scheduler-facing snapshot. No-op when priority maintenance is disabled
    /// or nothing changed.
    pub fn flush_priority(&mut self) {
        if let Some(priority) = &mut self.priority {
            priority.flush();
        }
    }

    /// The alive job indices, sorted ascending.
    pub fn alive(&self) -> &[usize] {
        &self.alive
    }

    /// The alive jobs sorted by `(arrival, idx)` ascending.
    pub fn alive_by_arrival(&self) -> &[(Slot, usize)] {
        &self.by_arrival
    }

    /// The alive jobs with unscheduled tasks as a demand-gated
    /// [`RankedEntries`] view in decreasing `w_i / U_i(l)` order (ties by
    /// idx), if priority maintenance is enabled; `None` otherwise. Call
    /// [`AliveIndex::flush_priority`] first after mutations.
    pub fn ranked_by_priority(&self) -> Option<(f64, RankedEntries<'_>)> {
        self.priority
            .as_ref()
            .map(|p| (p.r, RankedEntries { index: p }))
    }

    /// Number of alive jobs.
    pub fn len(&self) -> usize {
        self.alive.len()
    }

    /// Whether no job is alive.
    pub fn is_empty(&self) -> bool {
        self.alive.is_empty()
    }

    /// Sum of the weights of the alive jobs.
    pub fn total_weight(&self) -> f64 {
        self.weight_sum
    }

    /// Total number of unscheduled tasks across alive jobs.
    pub fn total_unscheduled(&self) -> usize {
        self.unscheduled_sum
    }

    /// Sum of the weights of the alive jobs that still have unscheduled
    /// tasks — the `W(l)` the ε-fraction rule normalises by.
    pub fn total_unscheduled_weight(&self) -> f64 {
        self.unscheduled_weight_sum
    }

    /// Total launchable unscheduled tasks across alive jobs, when the index
    /// maintains the aggregate (priority order enabled); `None` otherwise.
    /// Requires the engine to report map-phase completions through
    /// [`AliveIndex::note_map_phase_complete`].
    pub fn total_launchable(&self) -> Option<usize> {
        self.priority.as_ref().map(|_| self.launchable_sum)
    }
}

/// Read-only snapshot of the cluster handed to schedulers at every decision
/// point.
#[derive(Debug)]
pub struct ClusterState<'a> {
    now: Slot,
    total_machines: usize,
    available_machines: usize,
    jobs: &'a [JobState],
    alive: &'a [usize],
    /// The run's copy storage; per-copy task queries resolve ids against it.
    copies: &'a CopyArena,
    /// Aggregates carried over from an [`AliveIndex`], when the snapshot was
    /// built incrementally by the engine. `None` for hand-built snapshots.
    cached_weight: Option<f64>,
    cached_unscheduled: Option<usize>,
    /// Incrementally maintained `W(l)` over the jobs with unscheduled tasks,
    /// when index-backed.
    cached_unscheduled_weight: Option<f64>,
    /// Incrementally maintained launchable-unscheduled total, when
    /// index-backed with the priority order enabled.
    cached_launchable: Option<usize>,
    /// How many ranked entries the scheduler actually consumed this decision
    /// (reported via [`ClusterState::note_ranked_prefix`]); interior-mutable
    /// because the snapshot is handed to schedulers by shared reference.
    ranked_prefix_consumed: std::cell::Cell<usize>,
    /// Alive jobs in `(arrival, idx)` order, when index-backed.
    arrival_order: Option<&'a [(Slot, usize)]>,
    /// Demand-gated `(priority, idx)` order (decreasing `w_i / U_i(l)`) for
    /// the pessimism factor the scheduler declared, when index-backed.
    ranked: Option<(f64, RankedEntries<'a>)>,
}

impl<'a> ClusterState<'a> {
    /// Builds a snapshot from explicit parts. Aggregates are computed on
    /// demand by scanning; the engine uses [`ClusterState::from_index`]
    /// instead. Public so scheduler crates can unit-test their policies
    /// against hand-crafted states without running a full simulation.
    pub fn new(
        now: Slot,
        total_machines: usize,
        available_machines: usize,
        jobs: &'a [JobState],
        alive: &'a [usize],
        copies: &'a CopyArena,
    ) -> Self {
        ClusterState {
            now,
            total_machines,
            available_machines,
            jobs,
            alive,
            copies,
            cached_weight: None,
            cached_unscheduled: None,
            cached_unscheduled_weight: None,
            cached_launchable: None,
            ranked_prefix_consumed: std::cell::Cell::new(0),
            arrival_order: None,
            ranked: None,
        }
    }

    /// Builds a snapshot from the engine's incrementally maintained index —
    /// `O(1)`, no per-wakeup rescan of the job table.
    pub(crate) fn from_index(
        now: Slot,
        total_machines: usize,
        available_machines: usize,
        jobs: &'a [JobState],
        copies: &'a CopyArena,
        index: &'a AliveIndex,
    ) -> Self {
        ClusterState {
            now,
            total_machines,
            available_machines,
            jobs,
            alive: index.alive(),
            copies,
            cached_weight: Some(index.total_weight()),
            cached_unscheduled: Some(index.total_unscheduled()),
            cached_unscheduled_weight: Some(index.total_unscheduled_weight()),
            cached_launchable: index.total_launchable(),
            ranked_prefix_consumed: std::cell::Cell::new(0),
            arrival_order: Some(index.alive_by_arrival()),
            ranked: index.ranked_by_priority(),
        }
    }

    /// The current slot.
    pub fn now(&self) -> Slot {
        self.now
    }

    /// The run-level copy storage. Pass it to the per-copy task queries
    /// ([`TaskState::best_progress`], [`TaskState::min_remaining`],
    /// [`TaskState::oldest_active_elapsed`]) or index it directly with a
    /// [`CopyId`] from [`TaskState::copies`].
    pub fn copies(&self) -> &'a CopyArena {
        self.copies
    }

    /// Total number of machines `M` in the cluster.
    pub fn total_machines(&self) -> usize {
        self.total_machines
    }

    /// Number of machines not currently occupied by any copy (`M(l)` in
    /// Algorithm 2's notation for "available machines").
    pub fn available_machines(&self) -> usize {
        self.available_machines
    }

    /// Jobs that have arrived and are not yet complete, in job-id order.
    pub fn alive_jobs(&self) -> impl Iterator<Item = &'a JobState> + '_ {
        self.alive.iter().map(move |&i| &self.jobs[i])
    }

    /// The `i`-th alive job, in the same job-id order [`Self::alive_jobs`]
    /// iterates. Random access lets schedulers drive index-based scratch
    /// structures over the alive set without collecting a `Vec<&JobState>`
    /// snapshot on every decision.
    ///
    /// # Panics
    /// Panics if `i >= self.num_alive_jobs()`.
    pub fn alive_job_at(&self, i: usize) -> &'a JobState {
        &self.jobs[self.alive[i]]
    }

    /// Alive jobs in `(arrival, id)` order.
    ///
    /// Allocation-free for engine-built snapshots (the order is maintained
    /// incrementally across arrivals and completions and borrowed directly);
    /// falls back to a sort for hand-built snapshots. FIFO-family schedulers
    /// iterate this instead of re-sorting the alive set on every wakeup.
    pub fn alive_jobs_by_arrival(&self) -> impl Iterator<Item = &'a JobState> + '_ {
        let (indexed, sorted) = match self.arrival_order {
            Some(order) => (Some(order.iter()), None),
            None => {
                let mut v: Vec<usize> = self.alive.to_vec();
                v.sort_by_key(|&i| (self.jobs[i].arrival(), self.jobs[i].id()));
                (None, Some(v.into_iter()))
            }
        };
        let mut indexed = indexed;
        let mut sorted = sorted;
        std::iter::from_fn(move || {
            let i = match (&mut indexed, &mut sorted) {
                (Some(it), _) => it.next().map(|&(_, i)| i),
                (None, Some(it)) => it.next(),
                (None, None) => None,
            }?;
            Some(&self.jobs[i])
        })
    }

    /// The `(priority, job index)` entries of the alive jobs that still have
    /// unscheduled tasks, in decreasing `w_i / U_i(l)` priority order for
    /// pessimism factor `r` (ties broken by job index), if the snapshot
    /// carries a pre-ranked order for exactly that `r`. Indices are resolved
    /// with [`ClusterState::job_at`].
    ///
    /// Engine-built snapshots carry the order when the scheduler declared `r`
    /// through [`Scheduler::priority_r`]. The returned [`RankedEntries`] view
    /// is **demand-gated**: only the prefix actually read gets sorted, so a
    /// decision costs `O(prefix consumed)` instead of `O(alive · log)`, and
    /// the view can be walked several times (share pass, backfill pass)
    /// without collecting. Returns `None` (caller sorts itself) for
    /// hand-built snapshots or a mismatching `r`.
    pub fn ranked_entries(&self, r: f64) -> Option<RankedEntries<'a>> {
        match self.ranked {
            Some((indexed_r, entries)) if indexed_r == r => Some(entries),
            _ => None,
        }
    }

    /// Resolves a dense job index (as found in [`ClusterState::ranked_entries`])
    /// to its job state.
    pub fn job_at(&self, index: usize) -> &'a JobState {
        &self.jobs[index]
    }

    /// Number of alive jobs.
    pub fn num_alive_jobs(&self) -> usize {
        self.alive.len()
    }

    /// Looks up any job (alive, finished or not yet arrived) by id.
    pub fn job(&self, id: JobId) -> Option<&'a JobState> {
        self.jobs.get(id.as_usize())
    }

    /// Sum of the weights of all alive jobs (`W(l)` in Equation (5)).
    ///
    /// `O(1)` when the snapshot was built by the engine (the aggregate is
    /// maintained incrementally across arrivals and completions); falls back
    /// to a scan for hand-built snapshots.
    pub fn total_alive_weight(&self) -> f64 {
        match self.cached_weight {
            Some(w) => w,
            None => self.alive_jobs().map(|j| j.weight()).sum(),
        }
    }

    /// Total number of unscheduled tasks across alive jobs. `O(1)` for
    /// engine-built snapshots; schedulers can use it to bail out early when
    /// there is nothing to launch.
    pub fn total_unscheduled_tasks(&self) -> usize {
        match self.cached_unscheduled {
            Some(u) => u,
            None => self.alive_jobs().map(|j| j.total_unscheduled()).sum(),
        }
    }

    /// Sum of the weights of the alive jobs that still have unscheduled
    /// tasks — `W(l)` over the ε-fraction rule's candidate set `ψ^s(l)`.
    ///
    /// `O(1)` for engine-built snapshots (maintained incrementally by the
    /// [`AliveIndex`]); falls back to a scan for hand-built ones. Together
    /// with [`ClusterState::ranked_entries`] this lets SRPTMS+C truncate its
    /// share walk at the `(1−ε)·W(l)` boundary without touching the tail.
    pub fn total_unscheduled_weight(&self) -> f64 {
        match self.cached_unscheduled_weight {
            Some(w) => w,
            None => self
                .alive_jobs()
                .filter(|j| j.total_unscheduled() > 0)
                .map(|j| j.weight())
                .sum(),
        }
    }

    /// Total launchable unscheduled tasks across alive jobs (unscheduled
    /// maps, plus unscheduled reduces of jobs whose map phase completed).
    ///
    /// `O(1)` for engine-built snapshots with the priority order enabled
    /// (maintained incrementally by the [`AliveIndex`]); falls back to a
    /// scan otherwise. SRPTMS+C's work-conserving backfill counts its
    /// launches against this total and stops the moment nothing launchable
    /// remains — without it, every machines-outlast-work instant would walk
    /// (and therefore fully sort) the entire demand-gated ranked order.
    pub fn total_launchable_tasks(&self) -> usize {
        match self.cached_launchable {
            Some(c) => c,
            None => self.alive_jobs().map(|j| j.launchable_unscheduled()).sum(),
        }
    }

    /// Reports how many ranked candidates the scheduler materialised this
    /// decision; the engine folds the per-decision maximum into
    /// [`crate::SimOutcome::ranked_prefix_len_max`]. Schedulers that do not
    /// consume the ranked order simply never call this.
    pub fn note_ranked_prefix(&self, len: usize) {
        if len > self.ranked_prefix_consumed.get() {
            self.ranked_prefix_consumed.set(len);
        }
    }

    /// The largest ranked-candidate prefix reported this decision.
    pub fn ranked_prefix_consumed(&self) -> usize {
        self.ranked_prefix_consumed.get()
    }
}

/// A scheduling decision returned by a [`Scheduler`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Launch `copies` new copies of the given task, each occupying one
    /// machine. Launching an already-running task adds clone/speculative
    /// copies; launching an unscheduled task starts it.
    Launch {
        /// The task to launch copies of.
        task: TaskId,
        /// Number of new copies to create (at least 1).
        copies: usize,
    },
    /// Cancel active copies of the task, keeping the `keep` most-progressed
    /// ones. Used by restart-style speculative baselines; the paper's
    /// algorithms never issue it (sibling copies are cancelled automatically
    /// when a task finishes).
    CancelCopies {
        /// The task whose copies should be trimmed.
        task: TaskId,
        /// Number of copies to keep alive.
        keep: usize,
    },
}

impl ToJson for Action {
    fn to_json(&self) -> JsonValue {
        match *self {
            Action::Launch { task, copies } => JsonValue::object([(
                "Launch",
                JsonValue::object([("task", task.to_json()), ("copies", copies.to_json())]),
            )]),
            Action::CancelCopies { task, keep } => JsonValue::object([(
                "CancelCopies",
                JsonValue::object([("task", task.to_json()), ("keep", keep.to_json())]),
            )]),
        }
    }
}

impl FromJson for Action {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        if let Some(body) = value.get("Launch") {
            Ok(Action::Launch {
                task: TaskId::from_json(body.field("task")?)?,
                copies: usize::from_json(body.field("copies")?)?,
            })
        } else if let Some(body) = value.get("CancelCopies") {
            Ok(Action::CancelCopies {
                task: TaskId::from_json(body.field("task")?)?,
                keep: usize::from_json(body.field("keep")?)?,
            })
        } else {
            Err(JsonError::new("unknown Action variant"))
        }
    }
}

/// The interface every scheduling algorithm implements.
///
/// The engine guarantees that `schedule` is called whenever the cluster state
/// changed (job arrival, task completion) and, if
/// [`Scheduler::wakeup_interval`] returns `Some(k)`, at least every `k` slots
/// while any job is alive.
pub trait Scheduler {
    /// Human-readable name used in reports and benchmark labels.
    fn name(&self) -> &str;

    /// Makes scheduling decisions for the current state.
    ///
    /// Returned [`Action::Launch`] actions are applied in order until the
    /// cluster runs out of available machines; the engine clips the copy
    /// count of the action that crosses the limit and ignores the rest.
    fn schedule(&mut self, state: &ClusterState<'_>) -> Vec<Action>;

    /// Allocation-free variant of [`Scheduler::schedule`]: appends the
    /// decisions to a caller-owned buffer instead of returning a fresh
    /// vector.
    ///
    /// The engine hands every scheduler one buffer that it clears and reuses
    /// across all decision instants of a run, so the per-`schedule`
    /// `Vec<Action>` allocation disappears from the hot loop. The default
    /// forwards to [`Scheduler::schedule`]; hot schedulers override it (and
    /// implement `schedule` as a thin collecting wrapper). Implementations
    /// must only append — the buffer may already hold actions — and must not
    /// assume it starts empty.
    fn schedule_into(&mut self, state: &ClusterState<'_>, actions: &mut Vec<Action>) {
        actions.extend(self.schedule(state));
    }

    /// Optional periodic wakeup interval in slots. Detection-based schedulers
    /// (Mantri, LATE) need this to re-examine running tasks even when no
    /// event occurred; purely event-driven schedulers return `None`.
    fn wakeup_interval(&self) -> Option<Slot> {
        None
    }

    /// Which optional per-job indices the engine should maintain for this
    /// scheduler (see [`IndexDemands`]).
    ///
    /// Schedulers that consume [`JobState::running_tasks`] or
    /// [`JobState::running_by_finish`] must declare it here; the engine skips
    /// the corresponding bookkeeping otherwise (an undeclared index reads as
    /// empty). Maintenance has no effect on simulation outcomes — the indices
    /// are derived state — so this is purely a performance contract.
    fn index_demands(&self) -> IndexDemands {
        IndexDemands::default()
    }

    /// Pessimism factor `r` for which the engine should maintain the alive
    /// jobs pre-ranked by `w_i / U_i(l)` (Equation (4)).
    ///
    /// Schedulers that rank jobs by the paper's online priority return
    /// `Some(r)`; the engine then keeps the order current as events apply and
    /// exposes it through [`ClusterState::ranked_entries`], so the scheduler
    /// never sorts per wakeup. Returning `None` (the default) skips the
    /// maintenance entirely.
    fn priority_r(&self) -> Option<f64> {
        None
    }

    /// Hook invoked after a job arrives (before the next `schedule` call).
    fn on_job_arrival(&mut self, _job: JobId, _state: &ClusterState<'_>) {}

    /// Hook invoked after a task finishes (before the next `schedule` call).
    fn on_task_finished(&mut self, _task: TaskId, _state: &ClusterState<'_>) {}

    /// Hook invoked when a fault kills a task's last copy and the task falls
    /// back to the unscheduled pool (before the next `schedule` call).
    ///
    /// The engine's aggregate indices already re-admit the task, so
    /// schedulers that re-derive their candidates from [`ClusterState`] each
    /// wakeup need nothing here (the default is a no-op). Schedulers that
    /// keep *private* incremental launchability state — a ready set fed only
    /// by arrivals and completions — must treat this as a third
    /// launchable-work-creating event or they will never relaunch the task.
    /// Never invoked when the run has no fault plan.
    fn on_task_unlaunched(&mut self, _task: TaskId, _state: &ClusterState<'_>) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapreduce_support::{prop_assert, prop_assert_eq, proptest};
    use mapreduce_workload::{JobSpecBuilder, PhaseStats};

    fn job_state() -> JobState {
        let spec = JobSpecBuilder::new(JobId::new(0))
            .arrival(3)
            .weight(2.0)
            .map_tasks_from_workloads(&[10.0, 20.0])
            .reduce_tasks_from_workloads(&[30.0])
            .map_stats(PhaseStats::new(15.0, 5.0))
            .reduce_stats(PhaseStats::new(30.0, 0.0))
            .build();
        JobState::new(spec)
    }

    #[test]
    fn fresh_job_state_counters() {
        let js = job_state();
        assert!(!js.has_arrived());
        assert!(!js.is_alive());
        assert!(!js.is_complete());
        assert_eq!(js.num_unscheduled(Phase::Map), 2);
        assert_eq!(js.num_unscheduled(Phase::Reduce), 1);
        assert_eq!(js.num_unfinished(Phase::Map), 2);
        assert_eq!(js.total_unscheduled(), 3);
        assert_eq!(js.active_copies(), 0);
        assert!(!js.map_phase_complete());
    }

    #[test]
    fn remaining_effective_workload_matches_equation_4() {
        let js = job_state();
        // U = 2·(15 + 2·5) + 1·(30 + 0) = 50 + 30 = 80
        assert!((js.remaining_effective_workload(2.0) - 80.0).abs() < 1e-12);
        // r = 0: 2·15 + 30 = 60
        assert!((js.remaining_effective_workload(0.0) - 60.0).abs() < 1e-12);
        assert!((js.total_effective_workload(0.0) - 60.0).abs() < 1e-12);
    }

    #[test]
    fn launch_and_finish_bookkeeping() {
        let mut js = job_state();
        js.mark_arrived();
        assert!(js.is_alive());

        js.note_first_launch(Phase::Map, 0);
        js.note_copy_launched();
        js.task_mut(Phase::Map, 0).unwrap().add_copy(CopyId(0), 5);
        js.note_copy_running(Phase::Map, 0, 15);
        assert_eq!(js.num_unscheduled(Phase::Map), 1);
        assert_eq!(js.active_copies(), 1);
        assert_eq!(js.copies_launched(), 1);
        assert_eq!(js.unscheduled_tasks(Phase::Map).count(), 1);
        assert_eq!(js.unscheduled_indices(Phase::Map), &[1]);
        assert_eq!(js.running_tasks(Phase::Map).count(), 1);
        assert_eq!(js.running_by_finish(Phase::Map), &[(15, 0)]);

        js.task_mut(Phase::Map, 0).unwrap().mark_finished(15);
        js.note_task_finished(Phase::Map, 0, 10);
        js.note_copy_released(1);
        assert_eq!(js.num_unfinished(Phase::Map), 1);
        assert_eq!(js.active_copies(), 0);
        assert!(js.running_by_finish(Phase::Map).is_empty());
        assert_eq!(js.completed_duration_stats(Phase::Map), (1, 10));
        assert_eq!(js.mean_completed_duration(Phase::Map), Some(10.0));
        assert_eq!(js.mean_completed_duration(Phase::Reduce), None);
        assert!(!js.all_tasks_finished());
        assert!(!js.map_phase_complete());
    }

    #[test]
    fn running_by_finish_tracks_the_earliest_running_copy() {
        let mut js = job_state();
        js.mark_arrived();
        js.note_first_launch(Phase::Map, 0);
        js.task_mut(Phase::Map, 0).unwrap().add_copy(CopyId(0), 0);
        js.note_copy_running(Phase::Map, 0, 30);
        js.note_first_launch(Phase::Map, 1);
        js.task_mut(Phase::Map, 1).unwrap().add_copy(CopyId(1), 0);
        js.note_copy_running(Phase::Map, 1, 10);
        assert_eq!(js.running_by_finish(Phase::Map), &[(10, 1), (30, 0)]);

        // A faster clone of task 0 re-keys its entry to the earlier finish.
        js.task_mut(Phase::Map, 0).unwrap().add_copy(CopyId(2), 2);
        js.note_copy_running(Phase::Map, 0, 5);
        assert_eq!(js.running_by_finish(Phase::Map), &[(5, 0), (10, 1)]);
        // A slower clone leaves the key untouched.
        js.note_copy_running(Phase::Map, 0, 50);
        assert_eq!(js.running_by_finish(Phase::Map), &[(5, 0), (10, 1)]);

        // Cancelling the fast copy re-keys back to the surviving copy.
        js.refresh_running_finish(Phase::Map, 0, Some(30));
        assert_eq!(js.running_by_finish(Phase::Map), &[(10, 1), (30, 0)]);
        // Cancelling everything drops the entry.
        js.refresh_running_finish(Phase::Map, 0, None);
        assert_eq!(js.running_by_finish(Phase::Map), &[(10, 1)]);
    }

    #[test]
    fn task_state_progress_tracking() {
        let mut arena = CopyArena::new();
        let mut ts = TaskState::new(TaskId::new(JobId::new(1), Phase::Map, 0), 50.0);
        assert!(ts.is_unscheduled());
        assert_eq!(ts.best_progress(&arena, 100), 0.0);
        assert_eq!(ts.min_remaining(&arena, 100), None);

        let (c0, _) = arena.alloc_running(ts.id(), 0, 50);
        ts.add_copy(c0, 0);
        let (c1, _) = arena.alloc_running(ts.id(), 10, 40);
        ts.add_copy(c1, 10);
        assert_eq!(ts.status(), TaskStatus::Scheduled);
        assert_eq!(ts.active_copies(), 2);
        assert_eq!(ts.copies(), &[c0, c1]);
        assert_eq!(ts.first_launched_at(), Some(0));
        // At slot 30: copy 0 has 30/50 = 0.6 progress, copy 1 has 20/40 = 0.5.
        assert!((ts.best_progress(&arena, 30) - 0.6).abs() < 1e-12);
        // Remaining: copy 0 → 20, copy 1 → 20.
        assert_eq!(ts.min_remaining(&arena, 30), Some(20));
        assert_eq!(ts.oldest_active_elapsed(&arena, 30), 30);

        ts.note_copies_released(2);
        assert_eq!(ts.active_copies(), 0);
        ts.mark_finished(50);
        assert!(ts.is_finished());
        assert_eq!(ts.finished_at(), Some(50));
    }

    #[test]
    fn waiting_copy_bookkeeping() {
        let mut js = job_state();
        js.mark_arrived();
        assert_eq!(js.waiting_copies(), 0);
        js.note_copy_waiting(0, CopyId(0));
        js.note_copy_waiting(0, CopyId(1));
        assert_eq!(js.waiting_copies(), 2);
        js.note_waiting_cancelled(1);
        assert_eq!(js.waiting_copies(), 1);
        let mut drained = Vec::new();
        js.take_waiting_reduce(&mut drained);
        // The list keeps stale (cancelled) entries; the counter is exact.
        assert_eq!(drained, vec![(0, CopyId(0)), (0, CopyId(1))]);
        assert_eq!(js.waiting_copies(), 0);
    }

    #[test]
    fn cluster_state_accessors() {
        let mut j0 = job_state();
        j0.mark_arrived();
        let spec1 = JobSpecBuilder::new(JobId::new(1))
            .weight(5.0)
            .map_tasks_from_workloads(&[1.0])
            .build();
        let mut j1 = JobState::new(spec1);
        j1.mark_arrived();
        let jobs = vec![j0, j1];
        let alive = vec![0usize, 1usize];
        let copies = CopyArena::new();
        let state = ClusterState::new(7, 10, 4, &jobs, &alive, &copies);
        assert_eq!(state.now(), 7);
        assert_eq!(state.total_machines(), 10);
        assert_eq!(state.available_machines(), 4);
        assert_eq!(state.num_alive_jobs(), 2);
        assert_eq!(state.alive_jobs().count(), 2);
        assert!((state.total_alive_weight() - 7.0).abs() < 1e-12);
        assert!(state.job(JobId::new(1)).is_some());
        assert!(state.job(JobId::new(5)).is_none());
    }

    #[test]
    fn action_equality_and_json() {
        let a = Action::Launch {
            task: TaskId::new(JobId::new(0), Phase::Map, 1),
            copies: 3,
        };
        let json = a.to_json().to_compact_string();
        let back = Action::from_json(&JsonValue::parse(&json).unwrap()).unwrap();
        assert_eq!(a, back);

        let c = Action::CancelCopies {
            task: TaskId::new(JobId::new(2), Phase::Reduce, 0),
            keep: 1,
        };
        let back = Action::from_json(&JsonValue::parse(&c.to_json().to_compact_string()).unwrap())
            .unwrap();
        assert_eq!(c, back);
    }

    /// Builds a bank of simple arrived jobs for AliveIndex tests: job `i` has
    /// `maps[i]` unit map tasks, weight `weights[i]`, arrival `arrivals[i]`.
    fn job_bank(maps: &[usize], weights: &[f64], arrivals: &[Slot]) -> Vec<JobState> {
        maps.iter()
            .zip(weights)
            .zip(arrivals)
            .enumerate()
            .map(|(i, ((&m, &w), &a))| {
                let spec = JobSpecBuilder::new(JobId::new(i as u64))
                    .weight(w)
                    .arrival(a)
                    .map_tasks_from_workloads(&vec![10.0; m])
                    .map_stats(PhaseStats::new(10.0, 0.0))
                    .build();
                let mut js = JobState::new(spec);
                js.mark_arrived();
                js
            })
            .collect()
    }

    #[test]
    fn alive_index_tracks_arrivals_launches_and_completions() {
        let jobs = job_bank(&[2, 2, 4, 4], &[1.0, 1.0, 2.0, 2.0], &[0, 9, 5, 5]);
        let mut index = AliveIndex::new();
        assert!(index.is_empty());
        index.insert(3, &jobs[3]);
        index.insert(1, &jobs[1]);
        index.insert(3, &jobs[3]); // duplicate insert is a no-op
        assert_eq!(index.alive(), &[1, 3]);
        assert_eq!(index.len(), 2);
        assert!((index.total_weight() - 3.0).abs() < 1e-12);
        assert_eq!(index.total_unscheduled(), 6);
        // Arrival order: job 3 arrived at 5, job 1 at 9.
        assert_eq!(index.alive_by_arrival(), &[(5, 3), (9, 1)]);

        index.note_first_launch(3, &jobs[3]);
        assert_eq!(index.total_unscheduled(), 5);

        index.remove(1, &jobs[1]);
        index.remove(1, &jobs[1]); // duplicate remove is a no-op
        assert_eq!(index.alive(), &[3]);
        assert_eq!(index.alive_by_arrival(), &[(5, 3)]);
        assert!((index.total_weight() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn alive_index_priority_order_matches_online_priority() {
        // w/U with r = 0: job0 = 1/20, job1 = 1/20, job2 = 2/40, job3 = 2/40:
        // all ties → id order. After launching a task of job 2 its priority
        // rises to 2/30 and it moves to the front.
        let mut jobs = job_bank(&[2, 2, 4, 4], &[1.0, 1.0, 2.0, 2.0], &[0, 0, 0, 0]);
        let mut index = AliveIndex::new();
        index.enable_priority(0.0);
        for (i, job) in jobs.iter().enumerate() {
            index.insert(i, job);
        }
        index.flush_priority();
        let (r, ranked) = index.ranked_by_priority().unwrap();
        assert_eq!(r, 0.0);
        let order: Vec<usize> = ranked.iter().map(|(_, i)| i).collect();
        assert_eq!(order, vec![0, 1, 2, 3]);

        jobs[2].note_first_launch(Phase::Map, 0);
        index.note_first_launch(2, &jobs[2]);
        index.flush_priority();
        let (_, ranked) = index.ranked_by_priority().unwrap();
        let order: Vec<usize> = ranked.iter().map(|(_, i)| i).collect();
        assert_eq!(order, vec![2, 0, 1, 3]);

        // Launching everything drops the job from the priority order.
        for t in 1..4 {
            jobs[2].note_first_launch(Phase::Map, t);
            index.note_first_launch(2, &jobs[2]);
        }
        index.flush_priority();
        let (_, ranked) = index.ranked_by_priority().unwrap();
        let order: Vec<usize> = ranked.iter().map(|(_, i)| i).collect();
        assert_eq!(order, vec![0, 1, 3]);

        index.remove(0, &jobs[0]);
        index.flush_priority();
        let (_, ranked) = index.ranked_by_priority().unwrap();
        let order: Vec<usize> = ranked.iter().map(|(_, i)| i).collect();
        assert_eq!(order, vec![1, 3]);
    }

    /// Satellite pin for the incremental `W(l)` counter: the
    /// unscheduled-weight aggregate must track arrivals, per-task launches
    /// (the job leaves `ψ^s` exactly when its last unscheduled task starts),
    /// phase transitions (reduce tasks keep the job counted after its maps
    /// drain) and completions, and always equal the scan it replaces.
    #[test]
    fn alive_index_tracks_unscheduled_weight_incrementally() {
        let scan = |index: &AliveIndex, jobs: &[JobState]| -> f64 {
            index
                .alive()
                .iter()
                .map(|&i| &jobs[i])
                .filter(|j| j.total_unscheduled() > 0)
                .map(|j| j.weight())
                .sum()
        };

        // Job 2 has a reduce phase, so its maps draining must NOT uncount it.
        let mut jobs = job_bank(&[1, 2, 2, 3], &[1.0, 2.0, 5.0, 12.0], &[0, 0, 0, 0]);
        let reduce_spec = JobSpecBuilder::new(JobId::new(2))
            .weight(5.0)
            .map_tasks_from_workloads(&[10.0, 10.0])
            .map_stats(PhaseStats::new(10.0, 0.0))
            .reduce_tasks_from_workloads(&[20.0])
            .reduce_stats(PhaseStats::new(20.0, 0.0))
            .build();
        jobs[2] = JobState::new(reduce_spec);
        jobs[2].mark_arrived();

        let mut index = AliveIndex::new();
        assert_eq!(index.total_unscheduled_weight(), 0.0);

        for (i, job) in jobs.iter().enumerate() {
            index.insert(i, job);
            assert_eq!(index.total_unscheduled_weight(), scan(&index, &jobs));
        }
        assert_eq!(index.total_unscheduled_weight(), 20.0);
        index.insert(1, &jobs[1]); // duplicate insert must not double-count
        assert_eq!(index.total_unscheduled_weight(), 20.0);

        // Launch job 0's only task: weight 1 leaves ψ^s immediately.
        jobs[0].note_first_launch(Phase::Map, 0);
        index.note_first_launch(0, &jobs[0]);
        assert_eq!(index.total_unscheduled_weight(), 19.0);
        assert_eq!(index.total_unscheduled_weight(), scan(&index, &jobs));

        // Launch job 1's tasks one at a time: counted until the last one.
        jobs[1].note_first_launch(Phase::Map, 0);
        index.note_first_launch(1, &jobs[1]);
        assert_eq!(index.total_unscheduled_weight(), 19.0);
        jobs[1].note_first_launch(Phase::Map, 1);
        index.note_first_launch(1, &jobs[1]);
        assert_eq!(index.total_unscheduled_weight(), 17.0);
        assert_eq!(index.total_unscheduled_weight(), scan(&index, &jobs));

        // Drain job 2's map phase: its reduce task keeps it counted.
        for t in 0..2 {
            jobs[2].note_first_launch(Phase::Map, t);
            index.note_first_launch(2, &jobs[2]);
        }
        assert_eq!(index.total_unscheduled_weight(), 17.0);
        assert_eq!(index.total_unscheduled_weight(), scan(&index, &jobs));
        // The reduce launch (post phase transition) finally uncounts it.
        jobs[2].note_first_launch(Phase::Reduce, 0);
        index.note_first_launch(2, &jobs[2]);
        assert_eq!(index.total_unscheduled_weight(), 12.0);

        // Completion of an already-uncounted job must not double-subtract;
        // removing a never-launched job must uncount it.
        index.remove(0, &jobs[0]);
        assert_eq!(index.total_unscheduled_weight(), 12.0);
        index.remove(3, &jobs[3]);
        assert_eq!(index.total_unscheduled_weight(), 0.0);
        assert_eq!(index.total_unscheduled_weight(), scan(&index, &jobs));
    }

    #[test]
    fn cluster_state_from_index_uses_cached_aggregates() {
        let mut j0 = job_state();
        j0.mark_arrived();
        let jobs = vec![j0];
        let copies = CopyArena::new();
        let mut index = AliveIndex::new();
        index.insert(0, &jobs[0]);
        let state = ClusterState::from_index(5, 8, 8, &jobs, &copies, &index);
        assert_eq!(state.num_alive_jobs(), 1);
        assert!((state.total_alive_weight() - jobs[0].weight()).abs() < 1e-12);
        assert_eq!(state.total_unscheduled_tasks(), 3);

        // Hand-built snapshots fall back to scanning.
        let alive = vec![0usize];
        let scanned = ClusterState::new(5, 8, 8, &jobs, &alive, &copies);
        assert_eq!(
            scanned.total_unscheduled_tasks(),
            state.total_unscheduled_tasks()
        );
        assert!((scanned.total_alive_weight() - state.total_alive_weight()).abs() < 1e-12);
        assert_eq!(
            scanned.total_unscheduled_weight(),
            state.total_unscheduled_weight()
        );

        assert_eq!(state.ranked_prefix_consumed(), 0);
        state.note_ranked_prefix(3);
        state.note_ranked_prefix(2); // max, not last
        assert_eq!(state.ranked_prefix_consumed(), 3);
    }

    /// The eager oracle the demand-gated prefix is pinned against: live
    /// entries, stably sorted by `(key desc, idx asc)` — exactly the order
    /// the pre-lazy implementation materialised at every flush.
    fn full_sort_oracle(keys: &[f64]) -> Vec<(f64, usize)> {
        let mut order: Vec<(f64, usize)> = keys
            .iter()
            .enumerate()
            .filter(|(_, k)| !k.is_nan())
            .map(|(idx, &k)| (k, idx))
            .collect();
        order.sort_by(|a, b| b.0.total_cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
        order
    }

    /// Builds a [`PriorityIndex`] holding the given live keys directly
    /// (`NaN` = never entered the order), mirroring what a sequence of
    /// `insert` calls establishes without needing full job specs.
    fn raw_priority_index(keys: &[f64]) -> PriorityIndex {
        let mut index = PriorityIndex {
            r: 1.0,
            ..Default::default()
        };
        for (idx, &k) in keys.iter().enumerate() {
            index.key.push(k);
            index.eff.push((0.0, 0.0));
            if !k.is_nan() {
                index.set.insert((PriorityIndex::sort_key(k), idx as u32));
                index.dirty = true;
            }
        }
        index
    }

    /// Decodes a small integer into a key drawn from a 5-value pool (plus
    /// `NaN`), so random vectors are saturated with exact-tie groups — the
    /// adversarial case for an unstable partial sort, which must still
    /// reproduce the stable oracle's `(key desc, idx asc)` tie order.
    fn tie_heavy_key(v: u32) -> f64 {
        if v == 0 {
            f64::NAN
        } else {
            f64::from(v % 6) * 0.5
        }
    }

    proptest! {
        #![proptest_config(mapreduce_support::proptest::ProptestConfig::with_cases(256))]

        #[test]
        fn demand_gated_prefix_matches_full_sort(
            seeds in mapreduce_support::proptest::collection::vec(0u32..6, 1..50),
            kills in mapreduce_support::proptest::collection::vec(0u32..50, 0..12),
            rekeys in mapreduce_support::proptest::collection::vec(0u32..300, 0..16),
            takes in mapreduce_support::proptest::collection::vec(0u32..64, 3..4),
        ) {
            let keys: Vec<f64> = seeds.iter().map(|&v| tie_heavy_key(v)).collect();
            let mut index = raw_priority_index(&keys);

            // Three decision instants: pristine, after completions (kills),
            // after re-keys — each consumes a random-length prefix and must
            // match the eager oracle entry for entry.
            for (round, &take_seed) in takes.iter().enumerate() {
                match round {
                    1 => {
                        for &k in &kills {
                            let idx = k as usize % keys.len();
                            if !index.key[idx].is_nan() {
                                // What `remove`/terminal `update` do.
                                index
                                    .set
                                    .remove(&(PriorityIndex::sort_key(index.key[idx]), idx as u32));
                                index.key[idx] = f64::NAN;
                                index.dirty = true;
                            }
                        }
                    }
                    2 => {
                        for &r in &rekeys {
                            let idx = (r as usize / 6) % keys.len();
                            if !index.key[idx].is_nan() {
                                // What a live re-key in `update` does: the
                                // old pair leaves the set, the new key's
                                // pair replaces it.
                                let nk = f64::from(r % 6) * 0.25 + 0.125;
                                index
                                    .set
                                    .remove(&(PriorityIndex::sort_key(index.key[idx]), idx as u32));
                                index.set.insert((PriorityIndex::sort_key(nk), idx as u32));
                                index.key[idx] = nk;
                                index.dirty = true;
                            }
                        }
                    }
                    _ => {}
                }
                index.flush();
                let oracle = full_sort_oracle(&index.key);
                prop_assert_eq!(index.live_len(), oracle.len());
                let take = take_seed as usize % (oracle.len() + 1);
                for (i, &expect) in oracle.iter().take(take).enumerate() {
                    let got = index.entry(i);
                    prop_assert!(
                        got == expect,
                        "round {round} entry {i}: got {got:?}, oracle {expect:?}"
                    );
                }
            }
        }
    }
}
