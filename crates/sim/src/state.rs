//! Scheduler-facing view of the cluster: job and task state, the
//! [`ClusterState`] snapshot, the [`Action`] vocabulary and the [`Scheduler`]
//! trait.
//!
//! The engine owns all mutable state; schedulers only ever receive `&`
//! references and communicate decisions back through [`Action`] values, which
//! keeps every scheduling algorithm trivially deterministic and replayable.

use crate::copy::{CopyInfo, CopyPhase};
use mapreduce_support::json::{FromJson, JsonError, JsonValue, ToJson};
use mapreduce_workload::{JobId, JobSpec, Phase, TaskId};

/// Simulated time, measured in slots (1 slot = 1 second at the paper's
/// default granularity).
pub type Slot = u64;

/// Scheduling status of a task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskStatus {
    /// No copy has been launched yet (the task counts towards `m_i(l)` /
    /// `r_i(l)` in the paper's notation).
    Unscheduled,
    /// At least one copy is active, none has finished.
    Scheduled,
    /// Some copy finished; the task is complete.
    Finished,
}

/// Per-task runtime state.
#[derive(Debug, Clone)]
pub struct TaskState {
    id: TaskId,
    workload: f64,
    status: TaskStatus,
    copies: Vec<CopyInfo>,
    first_launched_at: Option<Slot>,
    finished_at: Option<Slot>,
}

impl TaskState {
    pub(crate) fn new(id: TaskId, workload: f64) -> Self {
        TaskState {
            id,
            workload,
            status: TaskStatus::Unscheduled,
            copies: Vec::new(),
            first_launched_at: None,
            finished_at: None,
        }
    }

    /// Identity of the task.
    pub fn id(&self) -> TaskId {
        self.id
    }

    /// The ground-truth workload of the original task attempt. Exposed for
    /// metrics and oracle baselines; the paper's schedulers must not use it.
    pub fn true_workload(&self) -> f64 {
        self.workload
    }

    /// Scheduling status.
    pub fn status(&self) -> TaskStatus {
        self.status
    }

    /// Whether no copy has been launched yet.
    pub fn is_unscheduled(&self) -> bool {
        self.status == TaskStatus::Unscheduled
    }

    /// Whether the task has completed.
    pub fn is_finished(&self) -> bool {
        self.status == TaskStatus::Finished
    }

    /// Every copy ever launched for this task (active, finished or cancelled).
    pub fn copies(&self) -> &[CopyInfo] {
        &self.copies
    }

    /// Number of copies currently occupying machines.
    pub fn active_copies(&self) -> usize {
        self.copies.iter().filter(|c| c.is_active()).count()
    }

    /// Slot of the first launch, if any.
    pub fn first_launched_at(&self) -> Option<Slot> {
        self.first_launched_at
    }

    /// Slot at which the task finished, if it has.
    pub fn finished_at(&self) -> Option<Slot> {
        self.finished_at
    }

    /// Best (largest) progress fraction across the task's copies at `now`.
    pub fn best_progress(&self, now: Slot) -> f64 {
        self.copies
            .iter()
            .filter(|c| c.phase != CopyPhase::Cancelled)
            .map(|c| c.progress(now))
            .fold(0.0, f64::max)
    }

    /// Smallest remaining processing time across running copies at `now`
    /// (`None` if nothing is running).
    pub fn min_remaining(&self, now: Slot) -> Option<Slot> {
        self.copies
            .iter()
            .filter(|c| c.phase == CopyPhase::Running)
            .map(|c| c.remaining(now))
            .min()
    }

    /// Elapsed processing time of the oldest active copy at `now`, zero if no
    /// copy is active. Detection-based schedulers use this as the "age" of
    /// the task attempt.
    pub fn oldest_active_elapsed(&self, now: Slot) -> Slot {
        self.copies
            .iter()
            .filter(|c| c.is_active())
            .map(|c| c.elapsed(now))
            .max()
            .unwrap_or(0)
    }

    // ----- engine-internal mutation -----

    pub(crate) fn add_copy(&mut self, copy: CopyInfo) {
        if self.first_launched_at.is_none() {
            self.first_launched_at = Some(copy.launched_at);
        }
        if self.status == TaskStatus::Unscheduled {
            self.status = TaskStatus::Scheduled;
        }
        self.copies.push(copy);
    }

    pub(crate) fn copies_mut(&mut self) -> &mut Vec<CopyInfo> {
        &mut self.copies
    }

    pub(crate) fn mark_finished(&mut self, at: Slot) {
        self.status = TaskStatus::Finished;
        self.finished_at = Some(at);
    }
}

/// Per-job runtime state: the static [`JobSpec`] plus the dynamic progress of
/// all its tasks.
#[derive(Debug, Clone)]
pub struct JobState {
    spec: JobSpec,
    arrived: bool,
    map_tasks: Vec<TaskState>,
    reduce_tasks: Vec<TaskState>,
    unfinished_map: usize,
    unfinished_reduce: usize,
    unscheduled_map: usize,
    unscheduled_reduce: usize,
    active_copies: usize,
    copies_launched: usize,
    completed_at: Option<Slot>,
}

impl JobState {
    /// Creates the initial (not yet arrived, nothing scheduled) runtime state
    /// for a job.
    ///
    /// The engine builds these internally; the constructor is public so that
    /// scheduler crates can unit-test their priority and sharing logic against
    /// hand-crafted job states without running a full simulation.
    pub fn new(spec: JobSpec) -> Self {
        let map_tasks: Vec<TaskState> = spec
            .map_tasks
            .iter()
            .map(|t| TaskState::new(t.id, t.workload))
            .collect();
        let reduce_tasks: Vec<TaskState> = spec
            .reduce_tasks
            .iter()
            .map(|t| TaskState::new(t.id, t.workload))
            .collect();
        let unfinished_map = map_tasks.len();
        let unfinished_reduce = reduce_tasks.len();
        JobState {
            arrived: false,
            unscheduled_map: unfinished_map,
            unscheduled_reduce: unfinished_reduce,
            unfinished_map,
            unfinished_reduce,
            active_copies: 0,
            copies_launched: 0,
            completed_at: None,
            map_tasks,
            reduce_tasks,
            spec,
        }
    }

    /// Identity of the job.
    pub fn id(&self) -> JobId {
        self.spec.id
    }

    /// Weight `w_i` of the job.
    pub fn weight(&self) -> f64 {
        self.spec.weight
    }

    /// Arrival slot `a_i`.
    pub fn arrival(&self) -> Slot {
        self.spec.arrival
    }

    /// The full static job description (task counts, phase statistics, …).
    pub fn spec(&self) -> &JobSpec {
        &self.spec
    }

    /// Whether the job has arrived at the cluster.
    pub fn has_arrived(&self) -> bool {
        self.arrived
    }

    /// Whether every task of the job has finished.
    pub fn is_complete(&self) -> bool {
        self.completed_at.is_some()
    }

    /// Whether the job has arrived and still has unfinished tasks.
    pub fn is_alive(&self) -> bool {
        self.arrived && !self.is_complete()
    }

    /// Slot at which the job completed, if it has.
    pub fn completed_at(&self) -> Option<Slot> {
        self.completed_at
    }

    /// Whether every map task has finished (the precedence gate for the
    /// Reduce phase).
    pub fn map_phase_complete(&self) -> bool {
        self.unfinished_map == 0
    }

    /// Task states of a phase.
    pub fn tasks(&self, phase: Phase) -> &[TaskState] {
        match phase {
            Phase::Map => &self.map_tasks,
            Phase::Reduce => &self.reduce_tasks,
        }
    }

    /// A single task state.
    pub fn task(&self, phase: Phase, index: u32) -> Option<&TaskState> {
        self.tasks(phase).get(index as usize)
    }

    /// Number of tasks of `phase` that have not been launched yet
    /// (`m_i(l)` / `r_i(l)` in the paper).
    pub fn num_unscheduled(&self, phase: Phase) -> usize {
        match phase {
            Phase::Map => self.unscheduled_map,
            Phase::Reduce => self.unscheduled_reduce,
        }
    }

    /// Total number of unscheduled tasks across both phases (`c_i(l)`).
    pub fn total_unscheduled(&self) -> usize {
        self.unscheduled_map + self.unscheduled_reduce
    }

    /// Number of tasks of `phase` that have not finished yet.
    pub fn num_unfinished(&self, phase: Phase) -> usize {
        match phase {
            Phase::Map => self.unfinished_map,
            Phase::Reduce => self.unfinished_reduce,
        }
    }

    /// Ids of the unscheduled tasks of a phase, in index order. Schedulers
    /// that want the paper's "choose at random" behaviour can pick any subset;
    /// the engine does not care which unscheduled task is launched first.
    pub fn unscheduled_tasks(&self, phase: Phase) -> impl Iterator<Item = &TaskState> {
        self.tasks(phase).iter().filter(|t| t.is_unscheduled())
    }

    /// Tasks of a phase that are scheduled (running) but not finished.
    pub fn running_tasks(&self, phase: Phase) -> impl Iterator<Item = &TaskState> {
        self.tasks(phase)
            .iter()
            .filter(|t| t.status() == TaskStatus::Scheduled)
    }

    /// Number of machines currently occupied by this job's copies
    /// (`σ_i(l)` in the paper).
    pub fn active_copies(&self) -> usize {
        self.active_copies
    }

    /// Total number of copies launched for this job so far (original attempts
    /// plus clones plus speculative backups).
    pub fn copies_launched(&self) -> usize {
        self.copies_launched
    }

    /// The remaining effective workload `U_i(l)` of Equation (4):
    /// `m_i(l)·(E^m + rσ^m) + r_i(l)·(E^r + rσ^r)`, where `m_i(l)` and
    /// `r_i(l)` count *unscheduled* tasks.
    pub fn remaining_effective_workload(&self, r: f64) -> f64 {
        self.unscheduled_map as f64 * self.spec.map_stats.effective_task_workload(r)
            + self.unscheduled_reduce as f64 * self.spec.reduce_stats.effective_task_workload(r)
    }

    /// The total effective workload `φ_i` of Equation (2) (static, ignores
    /// progress).
    pub fn total_effective_workload(&self, r: f64) -> f64 {
        self.spec.effective_workload(r)
    }

    // ----- engine-internal mutation -----

    pub(crate) fn mark_arrived(&mut self) {
        self.arrived = true;
    }

    pub(crate) fn task_mut(&mut self, phase: Phase, index: u32) -> Option<&mut TaskState> {
        match phase {
            Phase::Map => self.map_tasks.get_mut(index as usize),
            Phase::Reduce => self.reduce_tasks.get_mut(index as usize),
        }
    }

    pub(crate) fn note_first_launch(&mut self, phase: Phase) {
        match phase {
            Phase::Map => self.unscheduled_map = self.unscheduled_map.saturating_sub(1),
            Phase::Reduce => self.unscheduled_reduce = self.unscheduled_reduce.saturating_sub(1),
        }
    }

    pub(crate) fn note_copy_launched(&mut self) {
        self.active_copies += 1;
        self.copies_launched += 1;
    }

    pub(crate) fn note_copy_released(&mut self, count: usize) {
        self.active_copies = self.active_copies.saturating_sub(count);
    }

    pub(crate) fn note_task_finished(&mut self, phase: Phase) {
        match phase {
            Phase::Map => self.unfinished_map = self.unfinished_map.saturating_sub(1),
            Phase::Reduce => self.unfinished_reduce = self.unfinished_reduce.saturating_sub(1),
        }
    }

    pub(crate) fn all_tasks_finished(&self) -> bool {
        self.unfinished_map == 0 && self.unfinished_reduce == 0
    }

    pub(crate) fn mark_complete(&mut self, at: Slot) {
        self.completed_at = Some(at);
    }
}

/// Incrementally maintained index over the alive jobs of a simulation.
///
/// The engine used to rebuild a `Vec` of alive job indices (and any aggregate
/// a scheduler needed, like the total alive weight) from a `BTreeSet` on
/// *every* scheduler wakeup — an `O(alive)` scan per decision instant that
/// dominates at 12 000-machine trace scale. This index is updated once per
/// arrival, completion and first task launch instead, so constructing a
/// [`ClusterState`] is `O(1)`.
#[derive(Debug, Default, Clone)]
pub struct AliveIndex {
    /// Alive job indices, kept sorted ascending (job-id order).
    alive: Vec<usize>,
    /// Sum of the weights of the alive jobs (`W(l)`).
    weight_sum: f64,
    /// Total number of unscheduled tasks across alive jobs.
    unscheduled_sum: usize,
}

impl AliveIndex {
    /// An empty index.
    pub fn new() -> Self {
        AliveIndex::default()
    }

    /// Records the arrival of job `idx`.
    pub fn insert(&mut self, idx: usize, weight: f64, unscheduled_tasks: usize) {
        if let Err(pos) = self.alive.binary_search(&idx) {
            self.alive.insert(pos, idx);
            self.weight_sum += weight;
            self.unscheduled_sum += unscheduled_tasks;
        }
    }

    /// Records the completion of job `idx` (all of whose tasks have been
    /// scheduled and finished by then).
    pub fn remove(&mut self, idx: usize, weight: f64) {
        if let Ok(pos) = self.alive.binary_search(&idx) {
            self.alive.remove(pos);
            self.weight_sum -= weight;
        }
    }

    /// Records the first launch of one previously unscheduled task.
    pub fn note_first_launch(&mut self) {
        self.unscheduled_sum = self.unscheduled_sum.saturating_sub(1);
    }

    /// The alive job indices, sorted ascending.
    pub fn alive(&self) -> &[usize] {
        &self.alive
    }

    /// Number of alive jobs.
    pub fn len(&self) -> usize {
        self.alive.len()
    }

    /// Whether no job is alive.
    pub fn is_empty(&self) -> bool {
        self.alive.is_empty()
    }

    /// Sum of the weights of the alive jobs.
    pub fn total_weight(&self) -> f64 {
        self.weight_sum
    }

    /// Total number of unscheduled tasks across alive jobs.
    pub fn total_unscheduled(&self) -> usize {
        self.unscheduled_sum
    }
}

/// Read-only snapshot of the cluster handed to schedulers at every decision
/// point.
#[derive(Debug)]
pub struct ClusterState<'a> {
    now: Slot,
    total_machines: usize,
    available_machines: usize,
    jobs: &'a [JobState],
    alive: &'a [usize],
    /// Aggregates carried over from an [`AliveIndex`], when the snapshot was
    /// built incrementally by the engine. `None` for hand-built snapshots.
    cached_weight: Option<f64>,
    cached_unscheduled: Option<usize>,
}

impl<'a> ClusterState<'a> {
    /// Builds a snapshot from explicit parts. Aggregates are computed on
    /// demand by scanning; the engine uses [`ClusterState::from_index`]
    /// instead. Public so scheduler crates can unit-test their policies
    /// against hand-crafted states without running a full simulation.
    pub fn new(
        now: Slot,
        total_machines: usize,
        available_machines: usize,
        jobs: &'a [JobState],
        alive: &'a [usize],
    ) -> Self {
        ClusterState {
            now,
            total_machines,
            available_machines,
            jobs,
            alive,
            cached_weight: None,
            cached_unscheduled: None,
        }
    }

    /// Builds a snapshot from the engine's incrementally maintained index —
    /// `O(1)`, no per-wakeup rescan of the job table.
    pub(crate) fn from_index(
        now: Slot,
        total_machines: usize,
        available_machines: usize,
        jobs: &'a [JobState],
        index: &'a AliveIndex,
    ) -> Self {
        ClusterState {
            now,
            total_machines,
            available_machines,
            jobs,
            alive: index.alive(),
            cached_weight: Some(index.total_weight()),
            cached_unscheduled: Some(index.total_unscheduled()),
        }
    }

    /// The current slot.
    pub fn now(&self) -> Slot {
        self.now
    }

    /// Total number of machines `M` in the cluster.
    pub fn total_machines(&self) -> usize {
        self.total_machines
    }

    /// Number of machines not currently occupied by any copy (`M(l)` in
    /// Algorithm 2's notation for "available machines").
    pub fn available_machines(&self) -> usize {
        self.available_machines
    }

    /// Jobs that have arrived and are not yet complete, in job-id order.
    pub fn alive_jobs(&self) -> impl Iterator<Item = &'a JobState> + '_ {
        self.alive.iter().map(move |&i| &self.jobs[i])
    }

    /// Number of alive jobs.
    pub fn num_alive_jobs(&self) -> usize {
        self.alive.len()
    }

    /// Looks up any job (alive, finished or not yet arrived) by id.
    pub fn job(&self, id: JobId) -> Option<&'a JobState> {
        self.jobs.get(id.as_usize())
    }

    /// Sum of the weights of all alive jobs (`W(l)` in Equation (5)).
    ///
    /// `O(1)` when the snapshot was built by the engine (the aggregate is
    /// maintained incrementally across arrivals and completions); falls back
    /// to a scan for hand-built snapshots.
    pub fn total_alive_weight(&self) -> f64 {
        match self.cached_weight {
            Some(w) => w,
            None => self.alive_jobs().map(|j| j.weight()).sum(),
        }
    }

    /// Total number of unscheduled tasks across alive jobs. `O(1)` for
    /// engine-built snapshots; schedulers can use it to bail out early when
    /// there is nothing to launch.
    pub fn total_unscheduled_tasks(&self) -> usize {
        match self.cached_unscheduled {
            Some(u) => u,
            None => self.alive_jobs().map(|j| j.total_unscheduled()).sum(),
        }
    }
}

/// A scheduling decision returned by a [`Scheduler`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Launch `copies` new copies of the given task, each occupying one
    /// machine. Launching an already-running task adds clone/speculative
    /// copies; launching an unscheduled task starts it.
    Launch {
        /// The task to launch copies of.
        task: TaskId,
        /// Number of new copies to create (at least 1).
        copies: usize,
    },
    /// Cancel active copies of the task, keeping the `keep` most-progressed
    /// ones. Used by restart-style speculative baselines; the paper's
    /// algorithms never issue it (sibling copies are cancelled automatically
    /// when a task finishes).
    CancelCopies {
        /// The task whose copies should be trimmed.
        task: TaskId,
        /// Number of copies to keep alive.
        keep: usize,
    },
}

impl ToJson for Action {
    fn to_json(&self) -> JsonValue {
        match *self {
            Action::Launch { task, copies } => JsonValue::object([(
                "Launch",
                JsonValue::object([("task", task.to_json()), ("copies", copies.to_json())]),
            )]),
            Action::CancelCopies { task, keep } => JsonValue::object([(
                "CancelCopies",
                JsonValue::object([("task", task.to_json()), ("keep", keep.to_json())]),
            )]),
        }
    }
}

impl FromJson for Action {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        if let Some(body) = value.get("Launch") {
            Ok(Action::Launch {
                task: TaskId::from_json(body.field("task")?)?,
                copies: usize::from_json(body.field("copies")?)?,
            })
        } else if let Some(body) = value.get("CancelCopies") {
            Ok(Action::CancelCopies {
                task: TaskId::from_json(body.field("task")?)?,
                keep: usize::from_json(body.field("keep")?)?,
            })
        } else {
            Err(JsonError::new("unknown Action variant"))
        }
    }
}

/// The interface every scheduling algorithm implements.
///
/// The engine guarantees that `schedule` is called whenever the cluster state
/// changed (job arrival, task completion) and, if
/// [`Scheduler::wakeup_interval`] returns `Some(k)`, at least every `k` slots
/// while any job is alive.
pub trait Scheduler {
    /// Human-readable name used in reports and benchmark labels.
    fn name(&self) -> &str;

    /// Makes scheduling decisions for the current state.
    ///
    /// Returned [`Action::Launch`] actions are applied in order until the
    /// cluster runs out of available machines; the engine clips the copy
    /// count of the action that crosses the limit and ignores the rest.
    fn schedule(&mut self, state: &ClusterState<'_>) -> Vec<Action>;

    /// Optional periodic wakeup interval in slots. Detection-based schedulers
    /// (Mantri, LATE) need this to re-examine running tasks even when no
    /// event occurred; purely event-driven schedulers return `None`.
    fn wakeup_interval(&self) -> Option<Slot> {
        None
    }

    /// Hook invoked after a job arrives (before the next `schedule` call).
    fn on_job_arrival(&mut self, _job: JobId, _state: &ClusterState<'_>) {}

    /// Hook invoked after a task finishes (before the next `schedule` call).
    fn on_task_finished(&mut self, _task: TaskId, _state: &ClusterState<'_>) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::copy::CopyId;
    use mapreduce_workload::{JobSpecBuilder, PhaseStats};

    fn job_state() -> JobState {
        let spec = JobSpecBuilder::new(JobId::new(0))
            .arrival(3)
            .weight(2.0)
            .map_tasks_from_workloads(&[10.0, 20.0])
            .reduce_tasks_from_workloads(&[30.0])
            .map_stats(PhaseStats::new(15.0, 5.0))
            .reduce_stats(PhaseStats::new(30.0, 0.0))
            .build();
        JobState::new(spec)
    }

    #[test]
    fn fresh_job_state_counters() {
        let js = job_state();
        assert!(!js.has_arrived());
        assert!(!js.is_alive());
        assert!(!js.is_complete());
        assert_eq!(js.num_unscheduled(Phase::Map), 2);
        assert_eq!(js.num_unscheduled(Phase::Reduce), 1);
        assert_eq!(js.num_unfinished(Phase::Map), 2);
        assert_eq!(js.total_unscheduled(), 3);
        assert_eq!(js.active_copies(), 0);
        assert!(!js.map_phase_complete());
    }

    #[test]
    fn remaining_effective_workload_matches_equation_4() {
        let js = job_state();
        // U = 2·(15 + 2·5) + 1·(30 + 0) = 50 + 30 = 80
        assert!((js.remaining_effective_workload(2.0) - 80.0).abs() < 1e-12);
        // r = 0: 2·15 + 30 = 60
        assert!((js.remaining_effective_workload(0.0) - 60.0).abs() < 1e-12);
        assert!((js.total_effective_workload(0.0) - 60.0).abs() < 1e-12);
    }

    #[test]
    fn launch_and_finish_bookkeeping() {
        let mut js = job_state();
        js.mark_arrived();
        assert!(js.is_alive());

        let tid = TaskId::new(JobId::new(0), Phase::Map, 0);
        js.note_first_launch(Phase::Map);
        js.note_copy_launched();
        js.task_mut(Phase::Map, 0)
            .unwrap()
            .add_copy(CopyInfo::running(CopyId(0), tid, 5, 10));
        assert_eq!(js.num_unscheduled(Phase::Map), 1);
        assert_eq!(js.active_copies(), 1);
        assert_eq!(js.copies_launched(), 1);
        assert_eq!(js.unscheduled_tasks(Phase::Map).count(), 1);
        assert_eq!(js.running_tasks(Phase::Map).count(), 1);

        js.task_mut(Phase::Map, 0).unwrap().mark_finished(15);
        js.note_task_finished(Phase::Map);
        js.note_copy_released(1);
        assert_eq!(js.num_unfinished(Phase::Map), 1);
        assert_eq!(js.active_copies(), 0);
        assert!(!js.all_tasks_finished());
        assert!(!js.map_phase_complete());
    }

    #[test]
    fn task_state_progress_tracking() {
        let mut ts = TaskState::new(TaskId::new(JobId::new(1), Phase::Map, 0), 50.0);
        assert!(ts.is_unscheduled());
        assert_eq!(ts.best_progress(100), 0.0);
        assert_eq!(ts.min_remaining(100), None);

        ts.add_copy(CopyInfo::running(CopyId(1), ts.id(), 0, 50));
        ts.add_copy(CopyInfo::running(CopyId(2), ts.id(), 10, 40));
        assert_eq!(ts.status(), TaskStatus::Scheduled);
        assert_eq!(ts.active_copies(), 2);
        assert_eq!(ts.first_launched_at(), Some(0));
        // At slot 30: copy 1 has 30/50 = 0.6 progress, copy 2 has 20/40 = 0.5.
        assert!((ts.best_progress(30) - 0.6).abs() < 1e-12);
        // Remaining: copy 1 → 20, copy 2 → 20.
        assert_eq!(ts.min_remaining(30), Some(20));
        assert_eq!(ts.oldest_active_elapsed(30), 30);

        ts.mark_finished(50);
        assert!(ts.is_finished());
        assert_eq!(ts.finished_at(), Some(50));
    }

    #[test]
    fn cluster_state_accessors() {
        let mut j0 = job_state();
        j0.mark_arrived();
        let spec1 = JobSpecBuilder::new(JobId::new(1))
            .weight(5.0)
            .map_tasks_from_workloads(&[1.0])
            .build();
        let mut j1 = JobState::new(spec1);
        j1.mark_arrived();
        let jobs = vec![j0, j1];
        let alive = vec![0usize, 1usize];
        let state = ClusterState::new(7, 10, 4, &jobs, &alive);
        assert_eq!(state.now(), 7);
        assert_eq!(state.total_machines(), 10);
        assert_eq!(state.available_machines(), 4);
        assert_eq!(state.num_alive_jobs(), 2);
        assert_eq!(state.alive_jobs().count(), 2);
        assert!((state.total_alive_weight() - 7.0).abs() < 1e-12);
        assert!(state.job(JobId::new(1)).is_some());
        assert!(state.job(JobId::new(5)).is_none());
    }

    #[test]
    fn action_equality_and_json() {
        let a = Action::Launch {
            task: TaskId::new(JobId::new(0), Phase::Map, 1),
            copies: 3,
        };
        let json = a.to_json().to_compact_string();
        let back = Action::from_json(&JsonValue::parse(&json).unwrap()).unwrap();
        assert_eq!(a, back);

        let c = Action::CancelCopies {
            task: TaskId::new(JobId::new(2), Phase::Reduce, 0),
            keep: 1,
        };
        let back = Action::from_json(&JsonValue::parse(&c.to_json().to_compact_string()).unwrap())
            .unwrap();
        assert_eq!(c, back);
    }

    #[test]
    fn alive_index_tracks_arrivals_launches_and_completions() {
        let mut index = AliveIndex::new();
        assert!(index.is_empty());
        index.insert(3, 2.0, 4);
        index.insert(1, 1.0, 2);
        index.insert(3, 2.0, 4); // duplicate insert is a no-op
        assert_eq!(index.alive(), &[1, 3]);
        assert_eq!(index.len(), 2);
        assert!((index.total_weight() - 3.0).abs() < 1e-12);
        assert_eq!(index.total_unscheduled(), 6);

        index.note_first_launch();
        assert_eq!(index.total_unscheduled(), 5);

        index.remove(1, 1.0);
        index.remove(1, 1.0); // duplicate remove is a no-op
        assert_eq!(index.alive(), &[3]);
        assert!((index.total_weight() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn cluster_state_from_index_uses_cached_aggregates() {
        let mut j0 = job_state();
        j0.mark_arrived();
        let jobs = vec![j0];
        let mut index = AliveIndex::new();
        index.insert(0, jobs[0].weight(), jobs[0].total_unscheduled());
        let state = ClusterState::from_index(5, 8, 8, &jobs, &index);
        assert_eq!(state.num_alive_jobs(), 1);
        assert!((state.total_alive_weight() - jobs[0].weight()).abs() < 1e-12);
        assert_eq!(state.total_unscheduled_tasks(), 3);

        // Hand-built snapshots fall back to scanning.
        let alive = vec![0usize];
        let scanned = ClusterState::new(5, 8, 8, &jobs, &alive);
        assert_eq!(
            scanned.total_unscheduled_tasks(),
            state.total_unscheduled_tasks()
        );
        assert!((scanned.total_alive_weight() - state.total_alive_weight()).abs() < 1e-12);
    }
}
