//! Scheduler-facing view of the cluster: job and task state, the
//! [`ClusterState`] snapshot, the [`Action`] vocabulary and the [`Scheduler`]
//! trait.
//!
//! The engine owns all mutable state; schedulers only ever receive `&`
//! references and communicate decisions back through [`Action`] values, which
//! keeps every scheduling algorithm trivially deterministic and replayable.

use crate::copy::{CopyInfo, CopyPhase};
use mapreduce_workload::{JobId, JobSpec, Phase, TaskId};
use serde::{Deserialize, Serialize};

/// Simulated time, measured in slots (1 slot = 1 second at the paper's
/// default granularity).
pub type Slot = u64;

/// Scheduling status of a task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TaskStatus {
    /// No copy has been launched yet (the task counts towards `m_i(l)` /
    /// `r_i(l)` in the paper's notation).
    Unscheduled,
    /// At least one copy is active, none has finished.
    Scheduled,
    /// Some copy finished; the task is complete.
    Finished,
}

/// Per-task runtime state.
#[derive(Debug, Clone)]
pub struct TaskState {
    id: TaskId,
    workload: f64,
    status: TaskStatus,
    copies: Vec<CopyInfo>,
    first_launched_at: Option<Slot>,
    finished_at: Option<Slot>,
}

impl TaskState {
    pub(crate) fn new(id: TaskId, workload: f64) -> Self {
        TaskState {
            id,
            workload,
            status: TaskStatus::Unscheduled,
            copies: Vec::new(),
            first_launched_at: None,
            finished_at: None,
        }
    }

    /// Identity of the task.
    pub fn id(&self) -> TaskId {
        self.id
    }

    /// The ground-truth workload of the original task attempt. Exposed for
    /// metrics and oracle baselines; the paper's schedulers must not use it.
    pub fn true_workload(&self) -> f64 {
        self.workload
    }

    /// Scheduling status.
    pub fn status(&self) -> TaskStatus {
        self.status
    }

    /// Whether no copy has been launched yet.
    pub fn is_unscheduled(&self) -> bool {
        self.status == TaskStatus::Unscheduled
    }

    /// Whether the task has completed.
    pub fn is_finished(&self) -> bool {
        self.status == TaskStatus::Finished
    }

    /// Every copy ever launched for this task (active, finished or cancelled).
    pub fn copies(&self) -> &[CopyInfo] {
        &self.copies
    }

    /// Number of copies currently occupying machines.
    pub fn active_copies(&self) -> usize {
        self.copies.iter().filter(|c| c.is_active()).count()
    }

    /// Slot of the first launch, if any.
    pub fn first_launched_at(&self) -> Option<Slot> {
        self.first_launched_at
    }

    /// Slot at which the task finished, if it has.
    pub fn finished_at(&self) -> Option<Slot> {
        self.finished_at
    }

    /// Best (largest) progress fraction across the task's copies at `now`.
    pub fn best_progress(&self, now: Slot) -> f64 {
        self.copies
            .iter()
            .filter(|c| c.phase != CopyPhase::Cancelled)
            .map(|c| c.progress(now))
            .fold(0.0, f64::max)
    }

    /// Smallest remaining processing time across running copies at `now`
    /// (`None` if nothing is running).
    pub fn min_remaining(&self, now: Slot) -> Option<Slot> {
        self.copies
            .iter()
            .filter(|c| c.phase == CopyPhase::Running)
            .map(|c| c.remaining(now))
            .min()
    }

    /// Elapsed processing time of the oldest active copy at `now`, zero if no
    /// copy is active. Detection-based schedulers use this as the "age" of
    /// the task attempt.
    pub fn oldest_active_elapsed(&self, now: Slot) -> Slot {
        self.copies
            .iter()
            .filter(|c| c.is_active())
            .map(|c| c.elapsed(now))
            .max()
            .unwrap_or(0)
    }

    // ----- engine-internal mutation -----

    pub(crate) fn add_copy(&mut self, copy: CopyInfo) {
        if self.first_launched_at.is_none() {
            self.first_launched_at = Some(copy.launched_at);
        }
        if self.status == TaskStatus::Unscheduled {
            self.status = TaskStatus::Scheduled;
        }
        self.copies.push(copy);
    }

    pub(crate) fn copies_mut(&mut self) -> &mut Vec<CopyInfo> {
        &mut self.copies
    }

    pub(crate) fn mark_finished(&mut self, at: Slot) {
        self.status = TaskStatus::Finished;
        self.finished_at = Some(at);
    }
}

/// Per-job runtime state: the static [`JobSpec`] plus the dynamic progress of
/// all its tasks.
#[derive(Debug, Clone)]
pub struct JobState {
    spec: JobSpec,
    arrived: bool,
    map_tasks: Vec<TaskState>,
    reduce_tasks: Vec<TaskState>,
    unfinished_map: usize,
    unfinished_reduce: usize,
    unscheduled_map: usize,
    unscheduled_reduce: usize,
    active_copies: usize,
    copies_launched: usize,
    completed_at: Option<Slot>,
}

impl JobState {
    /// Creates the initial (not yet arrived, nothing scheduled) runtime state
    /// for a job.
    ///
    /// The engine builds these internally; the constructor is public so that
    /// scheduler crates can unit-test their priority and sharing logic against
    /// hand-crafted job states without running a full simulation.
    pub fn new(spec: JobSpec) -> Self {
        let map_tasks: Vec<TaskState> = spec
            .map_tasks
            .iter()
            .map(|t| TaskState::new(t.id, t.workload))
            .collect();
        let reduce_tasks: Vec<TaskState> = spec
            .reduce_tasks
            .iter()
            .map(|t| TaskState::new(t.id, t.workload))
            .collect();
        let unfinished_map = map_tasks.len();
        let unfinished_reduce = reduce_tasks.len();
        JobState {
            arrived: false,
            unscheduled_map: unfinished_map,
            unscheduled_reduce: unfinished_reduce,
            unfinished_map,
            unfinished_reduce,
            active_copies: 0,
            copies_launched: 0,
            completed_at: None,
            map_tasks,
            reduce_tasks,
            spec,
        }
    }

    /// Identity of the job.
    pub fn id(&self) -> JobId {
        self.spec.id
    }

    /// Weight `w_i` of the job.
    pub fn weight(&self) -> f64 {
        self.spec.weight
    }

    /// Arrival slot `a_i`.
    pub fn arrival(&self) -> Slot {
        self.spec.arrival
    }

    /// The full static job description (task counts, phase statistics, …).
    pub fn spec(&self) -> &JobSpec {
        &self.spec
    }

    /// Whether the job has arrived at the cluster.
    pub fn has_arrived(&self) -> bool {
        self.arrived
    }

    /// Whether every task of the job has finished.
    pub fn is_complete(&self) -> bool {
        self.completed_at.is_some()
    }

    /// Whether the job has arrived and still has unfinished tasks.
    pub fn is_alive(&self) -> bool {
        self.arrived && !self.is_complete()
    }

    /// Slot at which the job completed, if it has.
    pub fn completed_at(&self) -> Option<Slot> {
        self.completed_at
    }

    /// Whether every map task has finished (the precedence gate for the
    /// Reduce phase).
    pub fn map_phase_complete(&self) -> bool {
        self.unfinished_map == 0
    }

    /// Task states of a phase.
    pub fn tasks(&self, phase: Phase) -> &[TaskState] {
        match phase {
            Phase::Map => &self.map_tasks,
            Phase::Reduce => &self.reduce_tasks,
        }
    }

    /// A single task state.
    pub fn task(&self, phase: Phase, index: u32) -> Option<&TaskState> {
        self.tasks(phase).get(index as usize)
    }

    /// Number of tasks of `phase` that have not been launched yet
    /// (`m_i(l)` / `r_i(l)` in the paper).
    pub fn num_unscheduled(&self, phase: Phase) -> usize {
        match phase {
            Phase::Map => self.unscheduled_map,
            Phase::Reduce => self.unscheduled_reduce,
        }
    }

    /// Total number of unscheduled tasks across both phases (`c_i(l)`).
    pub fn total_unscheduled(&self) -> usize {
        self.unscheduled_map + self.unscheduled_reduce
    }

    /// Number of tasks of `phase` that have not finished yet.
    pub fn num_unfinished(&self, phase: Phase) -> usize {
        match phase {
            Phase::Map => self.unfinished_map,
            Phase::Reduce => self.unfinished_reduce,
        }
    }

    /// Ids of the unscheduled tasks of a phase, in index order. Schedulers
    /// that want the paper's "choose at random" behaviour can pick any subset;
    /// the engine does not care which unscheduled task is launched first.
    pub fn unscheduled_tasks(&self, phase: Phase) -> impl Iterator<Item = &TaskState> {
        self.tasks(phase).iter().filter(|t| t.is_unscheduled())
    }

    /// Tasks of a phase that are scheduled (running) but not finished.
    pub fn running_tasks(&self, phase: Phase) -> impl Iterator<Item = &TaskState> {
        self.tasks(phase)
            .iter()
            .filter(|t| t.status() == TaskStatus::Scheduled)
    }

    /// Number of machines currently occupied by this job's copies
    /// (`σ_i(l)` in the paper).
    pub fn active_copies(&self) -> usize {
        self.active_copies
    }

    /// Total number of copies launched for this job so far (original attempts
    /// plus clones plus speculative backups).
    pub fn copies_launched(&self) -> usize {
        self.copies_launched
    }

    /// The remaining effective workload `U_i(l)` of Equation (4):
    /// `m_i(l)·(E^m + rσ^m) + r_i(l)·(E^r + rσ^r)`, where `m_i(l)` and
    /// `r_i(l)` count *unscheduled* tasks.
    pub fn remaining_effective_workload(&self, r: f64) -> f64 {
        self.unscheduled_map as f64 * self.spec.map_stats.effective_task_workload(r)
            + self.unscheduled_reduce as f64 * self.spec.reduce_stats.effective_task_workload(r)
    }

    /// The total effective workload `φ_i` of Equation (2) (static, ignores
    /// progress).
    pub fn total_effective_workload(&self, r: f64) -> f64 {
        self.spec.effective_workload(r)
    }

    // ----- engine-internal mutation -----

    pub(crate) fn mark_arrived(&mut self) {
        self.arrived = true;
    }

    pub(crate) fn task_mut(&mut self, phase: Phase, index: u32) -> Option<&mut TaskState> {
        match phase {
            Phase::Map => self.map_tasks.get_mut(index as usize),
            Phase::Reduce => self.reduce_tasks.get_mut(index as usize),
        }
    }

    pub(crate) fn note_first_launch(&mut self, phase: Phase) {
        match phase {
            Phase::Map => self.unscheduled_map = self.unscheduled_map.saturating_sub(1),
            Phase::Reduce => self.unscheduled_reduce = self.unscheduled_reduce.saturating_sub(1),
        }
    }

    pub(crate) fn note_copy_launched(&mut self) {
        self.active_copies += 1;
        self.copies_launched += 1;
    }

    pub(crate) fn note_copy_released(&mut self, count: usize) {
        self.active_copies = self.active_copies.saturating_sub(count);
    }

    pub(crate) fn note_task_finished(&mut self, phase: Phase) {
        match phase {
            Phase::Map => self.unfinished_map = self.unfinished_map.saturating_sub(1),
            Phase::Reduce => self.unfinished_reduce = self.unfinished_reduce.saturating_sub(1),
        }
    }

    pub(crate) fn all_tasks_finished(&self) -> bool {
        self.unfinished_map == 0 && self.unfinished_reduce == 0
    }

    pub(crate) fn mark_complete(&mut self, at: Slot) {
        self.completed_at = Some(at);
    }
}

/// Read-only snapshot of the cluster handed to schedulers at every decision
/// point.
#[derive(Debug)]
pub struct ClusterState<'a> {
    now: Slot,
    total_machines: usize,
    available_machines: usize,
    jobs: &'a [JobState],
    alive: &'a [usize],
}

impl<'a> ClusterState<'a> {
    pub(crate) fn new(
        now: Slot,
        total_machines: usize,
        available_machines: usize,
        jobs: &'a [JobState],
        alive: &'a [usize],
    ) -> Self {
        ClusterState {
            now,
            total_machines,
            available_machines,
            jobs,
            alive,
        }
    }

    /// The current slot.
    pub fn now(&self) -> Slot {
        self.now
    }

    /// Total number of machines `M` in the cluster.
    pub fn total_machines(&self) -> usize {
        self.total_machines
    }

    /// Number of machines not currently occupied by any copy (`M(l)` in
    /// Algorithm 2's notation for "available machines").
    pub fn available_machines(&self) -> usize {
        self.available_machines
    }

    /// Jobs that have arrived and are not yet complete, in job-id order.
    pub fn alive_jobs(&self) -> impl Iterator<Item = &'a JobState> + '_ {
        self.alive.iter().map(move |&i| &self.jobs[i])
    }

    /// Number of alive jobs.
    pub fn num_alive_jobs(&self) -> usize {
        self.alive.len()
    }

    /// Looks up any job (alive, finished or not yet arrived) by id.
    pub fn job(&self, id: JobId) -> Option<&'a JobState> {
        self.jobs.get(id.as_usize())
    }

    /// Sum of the weights of all alive jobs (`W(l)` in Equation (5)).
    pub fn total_alive_weight(&self) -> f64 {
        self.alive_jobs().map(|j| j.weight()).sum()
    }
}

/// A scheduling decision returned by a [`Scheduler`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Action {
    /// Launch `copies` new copies of the given task, each occupying one
    /// machine. Launching an already-running task adds clone/speculative
    /// copies; launching an unscheduled task starts it.
    Launch {
        /// The task to launch copies of.
        task: TaskId,
        /// Number of new copies to create (at least 1).
        copies: usize,
    },
    /// Cancel active copies of the task, keeping the `keep` most-progressed
    /// ones. Used by restart-style speculative baselines; the paper's
    /// algorithms never issue it (sibling copies are cancelled automatically
    /// when a task finishes).
    CancelCopies {
        /// The task whose copies should be trimmed.
        task: TaskId,
        /// Number of copies to keep alive.
        keep: usize,
    },
}

/// The interface every scheduling algorithm implements.
///
/// The engine guarantees that `schedule` is called whenever the cluster state
/// changed (job arrival, task completion) and, if
/// [`Scheduler::wakeup_interval`] returns `Some(k)`, at least every `k` slots
/// while any job is alive.
pub trait Scheduler {
    /// Human-readable name used in reports and benchmark labels.
    fn name(&self) -> &str;

    /// Makes scheduling decisions for the current state.
    ///
    /// Returned [`Action::Launch`] actions are applied in order until the
    /// cluster runs out of available machines; the engine clips the copy
    /// count of the action that crosses the limit and ignores the rest.
    fn schedule(&mut self, state: &ClusterState<'_>) -> Vec<Action>;

    /// Optional periodic wakeup interval in slots. Detection-based schedulers
    /// (Mantri, LATE) need this to re-examine running tasks even when no
    /// event occurred; purely event-driven schedulers return `None`.
    fn wakeup_interval(&self) -> Option<Slot> {
        None
    }

    /// Hook invoked after a job arrives (before the next `schedule` call).
    fn on_job_arrival(&mut self, _job: JobId, _state: &ClusterState<'_>) {}

    /// Hook invoked after a task finishes (before the next `schedule` call).
    fn on_task_finished(&mut self, _task: TaskId, _state: &ClusterState<'_>) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::copy::CopyId;
    use mapreduce_workload::{JobSpecBuilder, PhaseStats};

    fn job_state() -> JobState {
        let spec = JobSpecBuilder::new(JobId::new(0))
            .arrival(3)
            .weight(2.0)
            .map_tasks_from_workloads(&[10.0, 20.0])
            .reduce_tasks_from_workloads(&[30.0])
            .map_stats(PhaseStats::new(15.0, 5.0))
            .reduce_stats(PhaseStats::new(30.0, 0.0))
            .build();
        JobState::new(spec)
    }

    #[test]
    fn fresh_job_state_counters() {
        let js = job_state();
        assert!(!js.has_arrived());
        assert!(!js.is_alive());
        assert!(!js.is_complete());
        assert_eq!(js.num_unscheduled(Phase::Map), 2);
        assert_eq!(js.num_unscheduled(Phase::Reduce), 1);
        assert_eq!(js.num_unfinished(Phase::Map), 2);
        assert_eq!(js.total_unscheduled(), 3);
        assert_eq!(js.active_copies(), 0);
        assert!(!js.map_phase_complete());
    }

    #[test]
    fn remaining_effective_workload_matches_equation_4() {
        let js = job_state();
        // U = 2·(15 + 2·5) + 1·(30 + 0) = 50 + 30 = 80
        assert!((js.remaining_effective_workload(2.0) - 80.0).abs() < 1e-12);
        // r = 0: 2·15 + 30 = 60
        assert!((js.remaining_effective_workload(0.0) - 60.0).abs() < 1e-12);
        assert!((js.total_effective_workload(0.0) - 60.0).abs() < 1e-12);
    }

    #[test]
    fn launch_and_finish_bookkeeping() {
        let mut js = job_state();
        js.mark_arrived();
        assert!(js.is_alive());

        let tid = TaskId::new(JobId::new(0), Phase::Map, 0);
        js.note_first_launch(Phase::Map);
        js.note_copy_launched();
        js.task_mut(Phase::Map, 0)
            .unwrap()
            .add_copy(CopyInfo::running(CopyId(0), tid, 5, 10));
        assert_eq!(js.num_unscheduled(Phase::Map), 1);
        assert_eq!(js.active_copies(), 1);
        assert_eq!(js.copies_launched(), 1);
        assert_eq!(js.unscheduled_tasks(Phase::Map).count(), 1);
        assert_eq!(js.running_tasks(Phase::Map).count(), 1);

        js.task_mut(Phase::Map, 0).unwrap().mark_finished(15);
        js.note_task_finished(Phase::Map);
        js.note_copy_released(1);
        assert_eq!(js.num_unfinished(Phase::Map), 1);
        assert_eq!(js.active_copies(), 0);
        assert!(!js.all_tasks_finished());
        assert!(!js.map_phase_complete());
    }

    #[test]
    fn task_state_progress_tracking() {
        let mut ts = TaskState::new(TaskId::new(JobId::new(1), Phase::Map, 0), 50.0);
        assert!(ts.is_unscheduled());
        assert_eq!(ts.best_progress(100), 0.0);
        assert_eq!(ts.min_remaining(100), None);

        ts.add_copy(CopyInfo::running(
            CopyId(1),
            ts.id(),
            0,
            50,
        ));
        ts.add_copy(CopyInfo::running(
            CopyId(2),
            ts.id(),
            10,
            40,
        ));
        assert_eq!(ts.status(), TaskStatus::Scheduled);
        assert_eq!(ts.active_copies(), 2);
        assert_eq!(ts.first_launched_at(), Some(0));
        // At slot 30: copy 1 has 30/50 = 0.6 progress, copy 2 has 20/40 = 0.5.
        assert!((ts.best_progress(30) - 0.6).abs() < 1e-12);
        // Remaining: copy 1 → 20, copy 2 → 20.
        assert_eq!(ts.min_remaining(30), Some(20));
        assert_eq!(ts.oldest_active_elapsed(30), 30);

        ts.mark_finished(50);
        assert!(ts.is_finished());
        assert_eq!(ts.finished_at(), Some(50));
    }

    #[test]
    fn cluster_state_accessors() {
        let mut j0 = job_state();
        j0.mark_arrived();
        let spec1 = JobSpecBuilder::new(JobId::new(1))
            .weight(5.0)
            .map_tasks_from_workloads(&[1.0])
            .build();
        let mut j1 = JobState::new(spec1);
        j1.mark_arrived();
        let jobs = vec![j0, j1];
        let alive = vec![0usize, 1usize];
        let state = ClusterState::new(7, 10, 4, &jobs, &alive);
        assert_eq!(state.now(), 7);
        assert_eq!(state.total_machines(), 10);
        assert_eq!(state.available_machines(), 4);
        assert_eq!(state.num_alive_jobs(), 2);
        assert_eq!(state.alive_jobs().count(), 2);
        assert!((state.total_alive_weight() - 7.0).abs() < 1e-12);
        assert!(state.job(JobId::new(1)).is_some());
        assert!(state.job(JobId::new(5)).is_none());
    }

    #[test]
    fn action_equality_and_serde() {
        let a = Action::Launch {
            task: TaskId::new(JobId::new(0), Phase::Map, 1),
            copies: 3,
        };
        let json = serde_json::to_string(&a).unwrap();
        let back: Action = serde_json::from_str(&json).unwrap();
        assert_eq!(a, back);
    }
}
