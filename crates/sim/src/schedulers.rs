//! Minimal built-in schedulers.
//!
//! These are *not* the paper's algorithms (those live in `mapreduce-sched`)
//! nor the published baselines (`mapreduce-baselines`). They exist so the
//! simulator can be exercised and tested on its own, and as starting points
//! for users writing custom schedulers against the [`Scheduler`] trait.

use crate::state::{Action, ClusterState, Scheduler};
use mapreduce_workload::{Phase, TaskId};

/// First-come-first-served, work-conserving, no cloning.
///
/// Jobs are served in arrival order; within a job, map tasks are launched
/// before reduce tasks (reduce tasks are only launched once the Map phase has
/// completed, which is always safe). Each unscheduled task gets exactly one
/// copy.
#[derive(Debug, Default, Clone)]
pub struct GreedyFifo {
    _private: (),
}

impl GreedyFifo {
    /// Creates the scheduler.
    pub fn new() -> Self {
        GreedyFifo::default()
    }
}

impl Scheduler for GreedyFifo {
    fn name(&self) -> &str {
        "greedy-fifo"
    }

    fn schedule(&mut self, state: &ClusterState<'_>) -> Vec<Action> {
        let mut actions = Vec::new();
        self.schedule_into(state, &mut actions);
        actions
    }

    fn schedule_into(&mut self, state: &ClusterState<'_>, actions: &mut Vec<Action>) {
        let mut budget = state.available_machines();
        if budget == 0 {
            return;
        }
        // Arrival order comes pre-maintained from the engine's alive index;
        // hand-built snapshots fall back to a sort inside the accessor.
        for job in state.alive_jobs_by_arrival() {
            for phase in [Phase::Map, Phase::Reduce] {
                if phase == Phase::Reduce && !job.map_phase_complete() {
                    continue;
                }
                for &index in job.unscheduled_indices(phase) {
                    if budget == 0 {
                        return;
                    }
                    actions.push(Action::Launch {
                        task: TaskId::new(job.id(), phase, index),
                        copies: 1,
                    });
                    budget -= 1;
                }
            }
        }
    }
}

/// A scheduler that never launches anything. Only useful to test the engine's
/// stall detection.
#[derive(Debug, Default, Clone)]
pub struct NoopScheduler {
    _private: (),
}

impl Scheduler for NoopScheduler {
    fn name(&self) -> &str {
        "noop"
    }

    fn schedule(&mut self, _state: &ClusterState<'_>) -> Vec<Action> {
        Vec::new()
    }
}

/// Launches every unscheduled task with up to `copies_per_task` copies and
/// keeps adding copies to running tasks while machines are idle. An
/// aggressive cloning strawman used in tests and ablations.
#[derive(Debug, Clone)]
pub struct MaxCloneScheduler {
    copies_per_task: usize,
}

impl MaxCloneScheduler {
    /// Creates the scheduler with a per-task copy target.
    ///
    /// # Panics
    /// Panics if `copies_per_task` is zero.
    pub fn new(copies_per_task: usize) -> Self {
        assert!(copies_per_task >= 1, "copies_per_task must be at least 1");
        MaxCloneScheduler { copies_per_task }
    }
}

impl Scheduler for MaxCloneScheduler {
    fn name(&self) -> &str {
        "max-clone"
    }

    fn schedule(&mut self, state: &ClusterState<'_>) -> Vec<Action> {
        let mut actions = Vec::new();
        self.schedule_into(state, &mut actions);
        actions
    }

    fn schedule_into(&mut self, state: &ClusterState<'_>, actions: &mut Vec<Action>) {
        let mut budget = state.available_machines();
        for job in state.alive_jobs() {
            for phase in [Phase::Map, Phase::Reduce] {
                if phase == Phase::Reduce && !job.map_phase_complete() {
                    continue;
                }
                for task in job.tasks(phase) {
                    if budget == 0 {
                        return;
                    }
                    if task.is_finished() {
                        continue;
                    }
                    let want = self.copies_per_task.saturating_sub(task.active_copies());
                    let n = want.min(budget);
                    if n > 0 {
                        actions.push(Action::Launch {
                            task: task.id(),
                            copies: n,
                        });
                        budget -= n;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::engine::Simulation;
    use mapreduce_workload::WorkloadBuilder;

    #[test]
    fn names_are_stable() {
        assert_eq!(GreedyFifo::new().name(), "greedy-fifo");
        assert_eq!(NoopScheduler::default().name(), "noop");
        assert_eq!(MaxCloneScheduler::new(2).name(), "max-clone");
    }

    #[test]
    fn fifo_launches_at_most_available_machines() {
        let trace = WorkloadBuilder::new().num_jobs(50).build(1);
        let sim = Simulation::new(SimConfig::new(3), &trace);
        // Run to completion; the engine asserts machine limits internally via
        // utilisation (checked in engine tests); here we just check progress.
        let outcome = sim.run(&mut GreedyFifo::new()).unwrap();
        assert_eq!(outcome.records().len(), 50);
    }

    #[test]
    fn max_clone_uses_more_copies_than_fifo() {
        let trace = WorkloadBuilder::new().num_jobs(5).build(2);
        let fifo = Simulation::new(SimConfig::new(32), &trace)
            .run(&mut GreedyFifo::new())
            .unwrap();
        let cloned = Simulation::new(SimConfig::new(32), &trace)
            .run(&mut MaxCloneScheduler::new(3))
            .unwrap();
        assert!(cloned.total_copies > fifo.total_copies);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn max_clone_rejects_zero() {
        MaxCloneScheduler::new(0);
    }
}
