//! Speedup functions `s(x)` for task cloning.
//!
//! Making `x` parallel copies of a task and keeping the first one to finish
//! reduces its expected duration from `E[p]` to `E[p] / s(x)`. The paper
//! requires the speedup function to be concave, strictly increasing, with
//! `s(1) = 1` and `s(x) ≤ x` (Section III-A); it derives the closed form for
//! Pareto-distributed task durations:
//!
//! > if `p` follows a Pareto distribution with shape `α`, the expected
//! > duration of the first of `r` i.i.d. copies to finish is `α·r·µ/(α·r−1)`,
//! > so `s(r) = r·(α−1)·... = (αr − 1) / (r(α − 1))` … wait, the paper states
//! > `s(r) = (rα − 1)/(r(α − 1))`.
//!
//! [`ParetoSpeedup`] implements exactly that closed form, and the property
//! tests in this module check the three structural requirements for every
//! implementation.

use std::fmt::Debug;

/// A speedup function `s(x)` mapping the number of copies of a task to the
/// factor by which its expected duration shrinks.
///
/// Implementations must satisfy, for all `x ≥ 1`:
/// * `s(1) = 1`,
/// * `s` is non-decreasing and concave,
/// * `s(x) ≤ x`.
pub trait SpeedupFunction: Debug + Send + Sync {
    /// The speedup obtained from `copies` parallel copies. `copies` is a real
    /// number so that analytical experiments can evaluate fractional
    /// allocations (the paper's analysis does exactly this with
    /// `s(w_i M / εW(t))`).
    fn speedup(&self, copies: f64) -> f64;

    /// Expected duration of a task with mean `mean_duration` when `copies`
    /// copies run in parallel.
    fn expected_duration(&self, mean_duration: f64, copies: f64) -> f64 {
        let c = copies.max(1.0);
        mean_duration / self.speedup(c).max(f64::MIN_POSITIVE)
    }
}

/// The Pareto-tail speedup `s(r) = (rα − 1) / (r(α − 1))` derived in
/// Section III-A of the paper for task durations following a Pareto
/// distribution with shape `α > 1`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParetoSpeedup {
    /// Shape parameter `α` of the Pareto task-duration distribution.
    pub alpha: f64,
}

impl ParetoSpeedup {
    /// Creates the speedup function for the given Pareto shape.
    ///
    /// # Panics
    /// Panics if `alpha <= 1` (the Pareto mean would be infinite).
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 1.0, "Pareto shape must exceed 1, got {alpha}");
        ParetoSpeedup { alpha }
    }
}

impl Default for ParetoSpeedup {
    /// A moderately heavy tail (α = 2), the value most often used in the
    /// straggler literature.
    fn default() -> Self {
        ParetoSpeedup::new(2.0)
    }
}

impl SpeedupFunction for ParetoSpeedup {
    fn speedup(&self, copies: f64) -> f64 {
        let r = copies.max(1.0);
        // The raw Pareto form (rα − 1)/(r(α − 1)) exceeds r for very heavy
        // tails (α < 1 + 1/r); the paper's model additionally requires
        // s(x) ≤ x, so we take the pointwise minimum, which preserves
        // concavity and monotonicity.
        let raw = (r * self.alpha - 1.0) / (r * (self.alpha - 1.0));
        raw.min(r)
    }
}

/// A linear-then-capped speedup `s(x) = min(x, cap)`; useful for ablations
/// and as an optimistic upper bound on what cloning can achieve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearCappedSpeedup {
    /// Maximum achievable speedup.
    pub cap: f64,
}

impl LinearCappedSpeedup {
    /// Creates the speedup function with the given cap.
    ///
    /// # Panics
    /// Panics if `cap < 1`.
    pub fn new(cap: f64) -> Self {
        assert!(cap >= 1.0, "cap must be at least 1, got {cap}");
        LinearCappedSpeedup { cap }
    }
}

impl SpeedupFunction for LinearCappedSpeedup {
    fn speedup(&self, copies: f64) -> f64 {
        copies.max(1.0).min(self.cap)
    }
}

/// The degenerate speedup `s(x) = 1`: cloning never helps. Used to ablate the
/// value of cloning itself.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct NoSpeedup;

impl SpeedupFunction for NoSpeedup {
    fn speedup(&self, _copies: f64) -> f64 {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapreduce_support::proptest::prelude::*;

    fn check_structural_properties(s: &dyn SpeedupFunction, xs: &[f64]) {
        // s(1) = 1
        assert!((s.speedup(1.0) - 1.0).abs() < 1e-9);
        for &x in xs {
            let v = s.speedup(x);
            // s(x) <= x and s(x) >= 1 for x >= 1
            assert!(v <= x + 1e-9, "s({x}) = {v} exceeds x");
            assert!(v >= 1.0 - 1e-9, "s({x}) = {v} below 1");
        }
        // monotone non-decreasing
        let mut prev = 0.0;
        for &x in xs {
            let v = s.speedup(x);
            assert!(v + 1e-9 >= prev, "not monotone at {x}");
            prev = v;
        }
    }

    #[test]
    fn pareto_speedup_structural_properties() {
        let xs: Vec<f64> = (1..=64).map(|i| i as f64).collect();
        for alpha in [1.1, 1.5, 2.0, 3.0, 10.0] {
            check_structural_properties(&ParetoSpeedup::new(alpha), &xs);
        }
    }

    #[test]
    fn pareto_speedup_matches_closed_form() {
        let s = ParetoSpeedup::new(2.0);
        // s(r) = (2r - 1) / r for alpha = 2
        assert!((s.speedup(2.0) - 1.5).abs() < 1e-12);
        assert!((s.speedup(4.0) - 7.0 / 4.0).abs() < 1e-12);
        // Asymptote: alpha / (alpha - 1) = 2
        assert!(s.speedup(1e6) < 2.0);
        assert!(s.speedup(1e6) > 1.99);
    }

    #[test]
    fn pareto_speedup_is_concave_on_integers() {
        let s = ParetoSpeedup::new(1.8);
        let mut prev_gain = f64::INFINITY;
        for r in 2..40 {
            let gain = s.speedup(r as f64) - s.speedup((r - 1) as f64);
            assert!(gain <= prev_gain + 1e-12, "marginal gain increased at {r}");
            assert!(gain >= -1e-12);
            prev_gain = gain;
        }
    }

    #[test]
    fn expected_duration_shrinks_with_copies() {
        let s = ParetoSpeedup::new(2.0);
        let base = s.expected_duration(100.0, 1.0);
        assert!((base - 100.0).abs() < 1e-9);
        assert!(s.expected_duration(100.0, 2.0) < base);
        assert!(s.expected_duration(100.0, 3.0) < s.expected_duration(100.0, 2.0));
    }

    #[test]
    fn linear_capped_behaviour() {
        let s = LinearCappedSpeedup::new(4.0);
        assert_eq!(s.speedup(1.0), 1.0);
        assert_eq!(s.speedup(3.0), 3.0);
        assert_eq!(s.speedup(10.0), 4.0);
        check_structural_properties(&s, &[1.0, 2.0, 3.0, 4.0, 8.0, 16.0]);
    }

    #[test]
    fn no_speedup_is_identity_one() {
        let s = NoSpeedup;
        for x in [1.0, 2.0, 100.0] {
            assert_eq!(s.speedup(x), 1.0);
        }
        assert_eq!(s.expected_duration(50.0, 10.0), 50.0);
    }

    #[test]
    #[should_panic(expected = "shape must exceed 1")]
    fn pareto_rejects_small_alpha() {
        ParetoSpeedup::new(1.0);
    }

    #[test]
    #[should_panic(expected = "cap must be at least 1")]
    fn linear_capped_rejects_small_cap() {
        LinearCappedSpeedup::new(0.5);
    }

    proptest! {
        #[test]
        fn prop_pareto_speedup_bounds(alpha in 1.01f64..20.0, copies in 1.0f64..256.0) {
            let s = ParetoSpeedup::new(alpha);
            let v = s.speedup(copies);
            prop_assert!(v >= 1.0 - 1e-9);
            prop_assert!(v <= copies + 1e-9);
            prop_assert!(v <= alpha / (alpha - 1.0) + 1e-9);
        }

        #[test]
        fn prop_pareto_speedup_proposition_1(alpha in 1.01f64..20.0, a in 1.0f64..64.0, delta in 0.0f64..64.0) {
            // Proposition 1 of the paper: f(a)/a >= f(b)/b for b >= a > 0 when
            // f is concave with f(0) >= 0.
            let s = ParetoSpeedup::new(alpha);
            let b = a + delta;
            prop_assert!(s.speedup(a) / a + 1e-9 >= s.speedup(b) / b);
        }

        #[test]
        fn prop_expected_duration_monotone(copies in 1.0f64..64.0) {
            let s = ParetoSpeedup::new(2.5);
            prop_assert!(s.expected_duration(100.0, copies + 1.0) <= s.expected_duration(100.0, copies) + 1e-9);
        }
    }
}
