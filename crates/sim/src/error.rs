//! Error type of the simulator.

use mapreduce_workload::TaskId;
use std::fmt;

/// Errors returned by [`crate::Simulation::run`] and by action validation.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The scheduler produced no progress: jobs are alive, no copies are
    /// running, no arrivals are pending, yet the scheduler issued no launch.
    SchedulerStalled {
        /// The slot at which the stall was detected.
        slot: u64,
        /// Number of jobs that were still alive.
        alive_jobs: usize,
    },
    /// The simulation exceeded the configured horizon
    /// ([`crate::SimConfig::max_slots`]).
    HorizonExceeded {
        /// The configured horizon.
        max_slots: u64,
        /// Number of jobs that had not completed when the horizon was hit.
        unfinished_jobs: usize,
    },
    /// The scheduler referenced a task that does not exist in the trace.
    UnknownTask(TaskId),
    /// The simulator was configured with zero machines.
    NoMachines,
    /// The job source violated its contract (jobs in non-decreasing arrival
    /// order with dense ids; see [`mapreduce_workload::JobSource`]).
    InvalidSourceJob {
        /// Dense index at which the violation was detected.
        index: usize,
        /// What the source did wrong.
        message: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::SchedulerStalled { slot, alive_jobs } => write!(
                f,
                "scheduler stalled at slot {slot} with {alive_jobs} alive jobs and no running work"
            ),
            SimError::HorizonExceeded {
                max_slots,
                unfinished_jobs,
            } => write!(
                f,
                "simulation horizon of {max_slots} slots exceeded with {unfinished_jobs} unfinished jobs"
            ),
            SimError::UnknownTask(id) => write!(f, "scheduler referenced unknown task {id}"),
            SimError::NoMachines => write!(f, "cluster must have at least one machine"),
            SimError::InvalidSourceJob { index, message } => {
                write!(f, "job source broke its contract at job {index}: {message}")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;
    use mapreduce_workload::{JobId, Phase};

    #[test]
    fn display_messages_are_informative() {
        let e = SimError::SchedulerStalled {
            slot: 10,
            alive_jobs: 3,
        };
        assert!(e.to_string().contains("slot 10"));
        let e = SimError::HorizonExceeded {
            max_slots: 100,
            unfinished_jobs: 2,
        };
        assert!(e.to_string().contains("100"));
        let e = SimError::UnknownTask(TaskId::new(JobId::new(1), Phase::Map, 0));
        assert!(e.to_string().contains("J1"));
        assert!(!SimError::NoMachines.to_string().is_empty());
    }
}
