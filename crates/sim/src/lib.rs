//! Slot-granular discrete-event MapReduce cluster simulator.
//!
//! This crate is the *substrate* of the reproduction: it implements the
//! cluster model of Section III of the paper — `M` identical unit-speed
//! machines, slotted time, one task copy per machine per slot, Map→Reduce
//! precedence inside every job, and task cloning where the first copy to
//! finish wins and the siblings are cancelled.
//!
//! The seam between the substrate and the algorithms is the
//! [`Scheduler`] trait: at every decision point the engine hands the
//! scheduler a read-only [`ClusterState`] and collects its [`Action`]s into
//! a run-level reusable buffer ([`Scheduler::schedule_into`]). The paper's
//! algorithms (crate `mapreduce-sched`) and all the baselines (crate
//! `mapreduce-baselines`) are implementations of this trait.
//!
//! The seam on the workload side is [`mapreduce_workload::JobSource`]: the
//! engine pulls jobs in arrival order ([`Simulation::from_source`]) and
//! releases each job's task storage at completion, so runs are bounded by
//! the alive window rather than the workload size — see
//! [`engine`](crate::engine) for the admission/trajectory guarantees.
//!
//! # Event path
//!
//! Event delivery is a slot-granular **calendar queue**
//! ([`events::EventQueue`]): a ring of `2^`[`SimConfig::event_ring_bits`]
//! per-slot buckets (default 2048) with a `BTreeMap` overflow for far-future
//! slots, giving `O(1)` amortized push/pop while reproducing the
//! `(slot, kind, sequence)` heap order bit-for-bit. Each decision instant is
//! drained as one batch (the bucket is sorted once), copy records live in a
//! run-level [`CopyArena`] indexed by [`CopyId`] so completions resolve in
//! `O(1)`, and cancelled copies **retract** their queued finish events —
//! buckets compact once half their entries are stale, leaving tombstoned
//! instants that still wake the engine exactly like the old lazily-deleted
//! entries did. The frozen pre-calendar heap ([`events::HeapEventQueue`]) is
//! kept as the ordering oracle for the side-by-side equivalence proptests
//! and the `event_path` benchmark.
//!
//! # Incremental scheduler state
//!
//! Per-decision cost is proportional to the work actually touched, not to
//! cluster size. The engine maintains, as events apply:
//!
//! * per-job, per-phase **free-lists** of unscheduled and running task
//!   indices ([`JobState::unscheduled_indices`], [`JobState::running_tasks`])
//!   — enumerating launchable or running work never scans the full task
//!   vector;
//! * a per-job, per-phase **running-by-finish order**
//!   ([`JobState::running_by_finish`]) keying every running task by the
//!   earliest finish slot of its copies — detection-based schedulers
//!   (Mantri) binary-search the straggler cutoff instead of re-deriving
//!   remaining times for every running task;
//! * per-job, per-phase **completed-duration aggregates**
//!   ([`JobState::mean_completed_duration`]) so restart-time estimates
//!   (`t_new`) are `O(1)`;
//! * an [`AliveIndex`] over the alive jobs carrying the weight/unscheduled
//!   aggregates, an **arrival order** for the FIFO family, and an optional
//!   **priority order** (decreasing `w_i / U_i(l)`, batched per decision
//!   instant) that a scheduler opts into via [`Scheduler::priority_r`] and
//!   consumes through [`ClusterState::ranked_entries`].
//!
//! The running free-list and the running-by-finish order are maintained only
//! for schedulers that declare them through [`Scheduler::index_demands`] —
//! keeping a sorted index current costs `O(running width)` memmove per
//! launch/finish, a real tax on wide jobs under schedulers that never read
//! it.
//!
//! The invariants of each structure are documented on the items themselves;
//! the golden-equivalence suite (`tests/tests/golden_equivalence.rs`) pins
//! every optimized scheduler to a frozen pre-optimization reference
//! bit-for-bit, and a dedicated proptest drives the calendar queue against
//! the frozen heap over randomized streams
//! (`tests/tests/event_queue_equivalence.rs`).
//!
//! # Quick example
//!
//! ```
//! use mapreduce_sim::{SimConfig, Simulation, schedulers::GreedyFifo};
//! use mapreduce_workload::WorkloadBuilder;
//!
//! let trace = WorkloadBuilder::new().num_jobs(5).build(1);
//! let config = SimConfig::new(8).with_seed(7);
//! let outcome = Simulation::new(config, &trace).run(&mut GreedyFifo::new()).unwrap();
//! assert_eq!(outcome.records().len(), 5);
//! assert!(outcome.mean_flowtime() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod copy;
pub mod engine;
pub mod error;
pub mod events;
pub mod result;
pub mod schedulers;
pub mod speedup;
pub mod state;
pub mod telemetry;

pub use config::{FaultClass, FaultPlan, SimConfig, StragglerModel};
pub use copy::{CopyArena, CopyId, CopyPhase, CopyRef};
pub use engine::Simulation;
pub use error::SimError;
pub use events::{Event, EventQueue, HeapEventQueue, StaleStats};
pub use result::{JobRecord, RunTelemetry, SimOutcome};
pub use speedup::{LinearCappedSpeedup, NoSpeedup, ParetoSpeedup, SpeedupFunction};
pub use state::{
    Action, AliveIndex, ClusterState, IndexDemands, JobState, RankedEntries, Scheduler, Slot,
    TaskState, TaskStatus,
};
pub use telemetry::{
    CancelReason, CopyCancelled, CopyFinished, CopyLaunched, DecisionInstant, NoopObserver,
    SimObserver,
};
