//! Effective-workload priorities.
//!
//! Both of the paper's algorithms rank jobs by *weight over effective
//! workload*:
//!
//! * the offline algorithm uses the static quantity `w_i / φ_i`, where
//!   `φ_i = m_i(E^m_i + rσ^m_i) + r_i(E^r_i + rσ^r_i)` (Equation (2));
//! * SRPTMS+C uses the dynamic quantity `w_i / U_i(l)`, where `U_i(l)`
//!   replaces the total task counts with the *unscheduled* task counts
//!   (Equation (4)).
//!
//! The standard deviation enters through the pessimism factor `r`: tasks with
//! high variance are treated as heavier, pushing their jobs later, because a
//! single straggling task can hold the whole job's flowtime hostage.

use mapreduce_sim::JobState;
use mapreduce_workload::{JobId, JobSpec};

/// The offline priority `w_i / φ_i` of a job specification (Algorithm 1).
///
/// Returns `f64::INFINITY` for a job with zero effective workload, which can
/// only happen for degenerate specs.
pub fn offline_priority(spec: &JobSpec, r: f64) -> f64 {
    let phi = spec.effective_workload(r);
    if phi > 0.0 {
        spec.weight / phi
    } else {
        f64::INFINITY
    }
}

/// The online priority `w_i / U_i(l)` of a job's current state (Algorithm 2).
///
/// Jobs whose tasks are all scheduled (U_i = 0) get `f64::INFINITY`; SRPTMS+C
/// filters them out before calling this, because they no longer participate
/// in machine sharing.
pub fn online_priority(job: &JobState, r: f64) -> f64 {
    let u = job.remaining_effective_workload(r);
    if u > 0.0 {
        job.weight() / u
    } else {
        f64::INFINITY
    }
}

/// Ranks job ids by decreasing priority, breaking ties by job id so the order
/// is total and deterministic.
///
/// The input is any list of `(JobId, priority)` pairs; the output is the job
/// ids sorted from most to least urgent.
pub fn rank_jobs_by_priority(mut jobs: Vec<(JobId, f64)>) -> Vec<JobId> {
    // `total_cmp` instead of `partial_cmp(..).unwrap_or(Equal)`: the latter
    // reports incomparable (NaN) pairs as equal, which makes the sort order —
    // and therefore the schedule — depend on the sorting algorithm's internal
    // partitioning. A NaN priority (a broken estimate) is demoted to -inf so
    // it ranks *last* rather than above every finite priority, with the job
    // id breaking the tie deterministically.
    let demote = |x: f64| if x.is_nan() { f64::NEG_INFINITY } else { x };
    jobs.sort_by(|a, b| {
        demote(b.1)
            .total_cmp(&demote(a.1))
            .then_with(|| a.0.cmp(&b.0))
    });
    jobs.into_iter().map(|(id, _)| id).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapreduce_workload::{JobSpecBuilder, PhaseStats};

    fn spec(weight: f64, maps: usize, map_mean: f64, map_std: f64) -> JobSpec {
        JobSpecBuilder::new(JobId::new(0))
            .weight(weight)
            .map_tasks_from_workloads(&vec![map_mean; maps])
            .map_stats(PhaseStats::new(map_mean, map_std))
            .build()
    }

    #[test]
    fn offline_priority_matches_formula() {
        let s = spec(6.0, 3, 10.0, 2.0);
        // φ = 3·(10 + 1·2) = 36 → priority = 6/36
        assert!((offline_priority(&s, 1.0) - 6.0 / 36.0).abs() < 1e-12);
        // r = 0: φ = 30 → 0.2
        assert!((offline_priority(&s, 0.0) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn higher_variance_lowers_priority() {
        let low_var = spec(1.0, 2, 10.0, 0.0);
        let high_var = spec(1.0, 2, 10.0, 8.0);
        assert!(offline_priority(&low_var, 3.0) > offline_priority(&high_var, 3.0));
        // With r = 0 the variance does not matter.
        assert!((offline_priority(&low_var, 0.0) - offline_priority(&high_var, 0.0)).abs() < 1e-12);
    }

    #[test]
    fn online_priority_tracks_remaining_work() {
        let s = spec(4.0, 4, 5.0, 0.0);
        let job = JobState::new(s);
        // All four map tasks unscheduled: U = 20 → priority 0.2.
        assert!((online_priority(&job, 0.0) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn ranking_is_descending_and_deterministic() {
        let ranked = rank_jobs_by_priority(vec![
            (JobId::new(0), 0.5),
            (JobId::new(1), 2.0),
            (JobId::new(2), 0.5),
            (JobId::new(3), 1.0),
        ]);
        assert_eq!(
            ranked,
            vec![JobId::new(1), JobId::new(3), JobId::new(0), JobId::new(2)]
        );
    }

    #[test]
    fn ranking_handles_infinities_and_nans() {
        let ranked = rank_jobs_by_priority(vec![
            (JobId::new(0), f64::INFINITY),
            (JobId::new(1), 1.0),
            (JobId::new(2), f64::NAN),
        ]);
        assert_eq!(ranked.len(), 3);
        assert_eq!(ranked[0], JobId::new(0));
        // A NaN priority is demoted below every real priority, not treated as
        // "equal to anything" (which left the order to the sort's internals).
        assert_eq!(ranked[2], JobId::new(2));
    }

    #[test]
    fn small_jobs_rank_before_large_jobs_at_equal_weight() {
        let small = spec(1.0, 2, 10.0, 0.0);
        let large = spec(1.0, 50, 10.0, 0.0);
        assert!(offline_priority(&small, 0.0) > offline_priority(&large, 0.0));
    }
}
