//! Theoretical guarantees of the offline algorithm (Theorem 1) as executable
//! checks.
//!
//! Theorem 1 states that under Algorithm 1, in the bulk-arrival setting, the
//! flowtime of job `J_i` is at most
//!
//! ```text
//! E^r_i + r·σ^r_i + f^s_i / M
//! ```
//!
//! with probability at least `1 + 1/r⁴ − 2/r²`, where
//! `f^s_i = Σ_{j : w_j/φ_j ≥ w_i/φ_i} φ_j` is the cumulative effective
//! workload of all jobs with priority at least `J_i`'s.
//!
//! Remark 2 observes that when the task-duration variance vanishes the bound
//! becomes `E^r_i + f^s_i / M`; since *any* schedule needs at least `E^r_i`
//! for the last reduce task and the SRPT-on-one-fast-machine relaxation needs
//! at least `f^s_i / M`, the algorithm is 2-competitive in that regime.
//!
//! This module computes the per-job bounds, the matching lower bounds and a
//! [`CompetitiveReport`] comparing them to measured flowtimes from a
//! simulation — the machinery behind the Theorem-1 experiment and several
//! integration/property tests.

use mapreduce_sim::SimOutcome;
use mapreduce_workload::{JobId, JobSpec, PhaseStats, Trace};

/// The probability bound of Theorem 1: the flowtime bound holds with
/// probability at least `1 + 1/r⁴ − 2/r²`.
///
/// The expression is only meaningful (positive) for `r > √2 · …` roughly
/// `r ≳ 1.55`; for smaller `r` the theorem makes no claim and this function
/// simply returns the (possibly negative) value of the formula clamped at 0.
pub fn theorem1_probability(r: f64) -> f64 {
    if r <= 0.0 {
        return 0.0;
    }
    let p = 1.0 + 1.0 / r.powi(4) - 2.0 / r.powi(2);
    p.max(0.0)
}

/// Per-job output of the Theorem-1 bound computation.
///
/// Two upper bounds are reported:
///
/// * [`OfflineBound::paper_bound`] is Theorem 1 verbatim:
///   `E^r_i + r·σ^r_i + f^s_i/M`.
/// * [`OfflineBound::upper_bound`] additionally accounts for the job's own
///   Map-phase critical path, `E^m_i + r·σ^m_i`, whenever the job has reduce
///   tasks. The paper's bound silently absorbs this term into `f^s_i/M`,
///   which is only valid when the work of higher-priority jobs saturates the
///   cluster; on a lightly-loaded (or very large) cluster the reduce phase
///   still has to wait for the job's own map phase, so the extra additive
///   term is required for the bound to be checkable. All competitive-ratio
///   accounting in [`CompetitiveReport`] uses this corrected bound; both are
///   reported by the Theorem-1 experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct OfflineBound {
    /// The job the bound refers to.
    pub job: JobId,
    /// The job's weight.
    pub weight: f64,
    /// The Theorem-1 bound exactly as stated in the paper:
    /// `E^r + r·σ^r + f^s_i/M`.
    pub paper_bound: f64,
    /// The corrected upper bound including the job's own Map-phase serial
    /// term (see the type-level documentation).
    pub upper_bound: f64,
    /// The lower bound `max(E^r_i, f^s_i/M)` any schedule must pay.
    pub lower_bound: f64,
    /// The cumulative effective workload `f^s_i` of jobs with priority at
    /// least this job's.
    pub accumulated_workload: f64,
}

/// Statistics of the final phase of a job — reduce if the job has reduce
/// tasks, otherwise map (a map-only job finishes with its last map task).
fn final_phase_stats(spec: &JobSpec) -> PhaseStats {
    if spec.num_reduce_tasks() > 0 {
        spec.reduce_stats
    } else {
        spec.map_stats
    }
}

/// Computes the Theorem-1 bounds for every job of a (bulk-arrival) trace on a
/// cluster of `machines` machines with pessimism factor `r`.
///
/// The jobs' arrival times are ignored: Theorem 1 is stated for the offline
/// case where every job is present at time 0.
///
/// # Panics
/// Panics if `machines` is zero.
pub fn theorem1_bound(trace: &Trace, machines: usize, r: f64) -> Vec<OfflineBound> {
    assert!(machines > 0, "cluster must have at least one machine");
    let m = machines as f64;

    // Priority and effective workload of every job.
    let jobs: Vec<(&JobSpec, f64, f64)> = trace
        .iter()
        .map(|spec| {
            let phi = spec.effective_workload(r);
            let priority = if phi > 0.0 {
                spec.weight / phi
            } else {
                f64::INFINITY
            };
            (spec, phi, priority)
        })
        .collect();

    jobs.iter()
        .map(|(spec, _, priority)| {
            let accumulated: f64 = jobs
                .iter()
                .filter(|(_, _, other_priority)| other_priority >= priority)
                .map(|(_, phi, _)| *phi)
                .sum();
            let stats = final_phase_stats(spec);
            let paper = stats.mean + r * stats.std_dev + accumulated / m;
            // Map-phase critical path only matters when a reduce phase has to
            // wait behind it.
            let map_serial = if spec.num_reduce_tasks() > 0 {
                spec.map_stats.mean + r * spec.map_stats.std_dev
            } else {
                0.0
            };
            let lower = stats.mean.max(accumulated / m);
            OfflineBound {
                job: spec.id,
                weight: spec.weight,
                paper_bound: paper,
                upper_bound: paper + map_serial,
                lower_bound: lower,
                accumulated_workload: accumulated,
            }
        })
        .collect()
}

/// Comparison of measured flowtimes against the Theorem-1 bounds.
#[derive(Debug, Clone, PartialEq)]
pub struct CompetitiveReport {
    /// Per-job entries: `(bound, measured flowtime)`.
    entries: Vec<(OfflineBound, f64)>,
    /// The pessimism factor the bounds were computed with.
    pub r: f64,
}

impl CompetitiveReport {
    /// Builds the report for a simulation outcome obtained by running the
    /// offline algorithm on the (bulk-arrival version of the) same trace.
    ///
    /// # Panics
    /// Panics if `machines` is zero.
    pub fn new(trace: &Trace, outcome: &SimOutcome, machines: usize, r: f64) -> Self {
        let bounds = theorem1_bound(trace, machines, r);
        let entries = bounds
            .into_iter()
            .map(|b| {
                let measured = outcome
                    .record(b.job)
                    .map(|rec| rec.flowtime() as f64)
                    .unwrap_or(f64::NAN);
                (b, measured)
            })
            .collect();
        CompetitiveReport { entries, r }
    }

    /// Per-job entries `(bound, measured flowtime)`.
    pub fn entries(&self) -> &[(OfflineBound, f64)] {
        &self.entries
    }

    /// Fraction of jobs whose measured flowtime is within the corrected
    /// Theorem-1 upper bound ([`OfflineBound::upper_bound`]).
    pub fn fraction_within_bound(&self) -> f64 {
        if self.entries.is_empty() {
            return 1.0;
        }
        let ok = self
            .entries
            .iter()
            .filter(|(b, measured)| *measured <= b.upper_bound + 1e-9)
            .count();
        ok as f64 / self.entries.len() as f64
    }

    /// Fraction of jobs whose measured flowtime is within the *verbatim*
    /// paper bound ([`OfflineBound::paper_bound`]). Reported alongside the
    /// corrected bound by the Theorem-1 experiment.
    pub fn fraction_within_paper_bound(&self) -> f64 {
        if self.entries.is_empty() {
            return 1.0;
        }
        let ok = self
            .entries
            .iter()
            .filter(|(b, measured)| *measured <= b.paper_bound + 1e-9)
            .count();
        ok as f64 / self.entries.len() as f64
    }

    /// Whether every job satisfied the bound.
    pub fn holds_for_all(&self) -> bool {
        (self.fraction_within_bound() - 1.0).abs() < f64::EPSILON
    }

    /// The empirical competitive ratio of the weighted sum of flowtimes: the
    /// measured weighted sum divided by the weighted sum of the per-job lower
    /// bounds. Remark 2 predicts this stays below 2 when task-duration
    /// variance is negligible.
    pub fn weighted_competitive_ratio(&self) -> f64 {
        let measured: f64 = self.entries.iter().map(|(b, m)| b.weight * m).sum();
        let lower: f64 = self
            .entries
            .iter()
            .map(|(b, _)| b.weight * b.lower_bound)
            .sum();
        if lower > 0.0 {
            measured / lower
        } else {
            f64::INFINITY
        }
    }

    /// Largest per-job ratio of measured flowtime over the Theorem-1 upper
    /// bound (≤ 1 means the bound held everywhere).
    pub fn max_bound_ratio(&self) -> f64 {
        self.entries
            .iter()
            .filter(|(b, _)| b.upper_bound > 0.0)
            .map(|(b, m)| m / b.upper_bound)
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offline::OfflineSrpt;
    use mapreduce_sim::{SimConfig, Simulation};
    use mapreduce_workload::{JobSpecBuilder, WorkloadBuilder};

    #[test]
    fn probability_formula() {
        assert_eq!(theorem1_probability(0.0), 0.0);
        assert_eq!(theorem1_probability(-1.0), 0.0);
        assert_eq!(theorem1_probability(1.0), 0.0); // 1 + 1 - 2 = 0
        let p3 = theorem1_probability(3.0);
        assert!((p3 - (1.0 + 1.0 / 81.0 - 2.0 / 9.0)).abs() < 1e-12);
        assert!(theorem1_probability(10.0) > 0.97);
        // Monotone increasing in r beyond 1.
        assert!(theorem1_probability(5.0) > theorem1_probability(2.0));
    }

    #[test]
    fn bound_hand_computation() {
        // Two deterministic jobs, equal weight 1:
        //   J0: 2 maps of 10, 1 reduce of 20 → φ = 40, priority 1/40
        //   J1: 1 map of 5, 1 reduce of 5   → φ = 10, priority 1/10
        let j0 = JobSpecBuilder::new(JobId::new(0))
            .map_tasks_from_workloads(&[10.0, 10.0])
            .reduce_tasks_from_workloads(&[20.0])
            .build();
        let j1 = JobSpecBuilder::new(JobId::new(1))
            .map_tasks_from_workloads(&[5.0])
            .reduce_tasks_from_workloads(&[5.0])
            .build();
        let trace = Trace::new(vec![j0, j1]).unwrap();
        let bounds = theorem1_bound(&trace, 2, 0.0);
        // J1 has the higher priority → f^s = 10; J0 → f^s = 10 + 40 = 50.
        let b0 = bounds.iter().find(|b| b.job == JobId::new(0)).unwrap();
        let b1 = bounds.iter().find(|b| b.job == JobId::new(1)).unwrap();
        assert!((b1.accumulated_workload - 10.0).abs() < 1e-9);
        assert!((b0.accumulated_workload - 50.0).abs() < 1e-9);
        // Paper bounds: J1: 5 + 10/2 = 10; J0: 20 + 50/2 = 45.
        assert!((b1.paper_bound - 10.0).abs() < 1e-9);
        assert!((b0.paper_bound - 45.0).abs() < 1e-9);
        // Corrected bounds add the map serial term: J1: 10 + 5 = 15;
        // J0: 45 + 10 = 55.
        assert!((b1.upper_bound - 15.0).abs() < 1e-9);
        assert!((b0.upper_bound - 55.0).abs() < 1e-9);
        // Lower bounds: J1: max(5, 5) = 5; J0: max(20, 25) = 25.
        assert!((b1.lower_bound - 5.0).abs() < 1e-9);
        assert!((b0.lower_bound - 25.0).abs() < 1e-9);
    }

    #[test]
    fn bound_holds_for_deterministic_single_phase_workload() {
        // Zero-variance, map-only workload: Algorithm 1 degenerates to list
        // scheduling in SRPT order, the Theorem-1 bound must hold
        // deterministically and the weighted competitive ratio must stay
        // below 2 (Remark 2).
        let trace = WorkloadBuilder::new()
            .num_jobs(30)
            .map_tasks_per_job(1, 6)
            .reduce_tasks_per_job(0, 0)
            .map_duration(mapreduce_workload::DurationDistribution::Deterministic { value: 20.0 })
            .weights(&[1.0, 2.0, 4.0])
            .build(3)
            .as_bulk_arrival();
        let machines = 8;
        let outcome = Simulation::new(SimConfig::new(machines), &trace)
            .run(&mut OfflineSrpt::new(0.0))
            .unwrap();
        let report = CompetitiveReport::new(&trace, &outcome, machines, 0.0);
        assert!(
            report.holds_for_all(),
            "bound violated; max ratio {}",
            report.max_bound_ratio()
        );
        assert!(
            report.weighted_competitive_ratio() <= 2.0 + 1e-9,
            "competitive ratio {} exceeds 2",
            report.weighted_competitive_ratio()
        );
    }

    #[test]
    fn bound_mostly_holds_with_two_phases() {
        // With reduce tasks, Algorithm 1 parks reduce copies on machines that
        // then idle until the Map phase completes (exactly as the paper
        // describes). That wasted capacity means the Theorem-1 bound — whose
        // proof charges every machine-slot to useful work — can be exceeded
        // by a modest factor for a few jobs. We check that the bound still
        // holds for the large majority of jobs and that the aggregate
        // weighted ratio against the *lower* bound stays moderate.
        // Map-heavy jobs (as in the Google trace, ~70 % map tasks with several
        // map tasks per reduce task) keep the capacity lost to parked reduce
        // copies small.
        let trace = WorkloadBuilder::new()
            .num_jobs(30)
            .map_tasks_per_job(4, 8)
            .reduce_tasks_per_job(1, 1)
            .map_duration(mapreduce_workload::DurationDistribution::Deterministic { value: 20.0 })
            .reduce_duration(mapreduce_workload::DurationDistribution::Deterministic {
                value: 30.0,
            })
            .weights(&[1.0, 2.0, 4.0])
            .build(3)
            .as_bulk_arrival();
        let machines = 8;
        let outcome = Simulation::new(SimConfig::new(machines), &trace)
            .run(&mut OfflineSrpt::new(0.0))
            .unwrap();
        let report = CompetitiveReport::new(&trace, &outcome, machines, 0.0);
        eprintln!(
            "two-phase Theorem-1 check: within corrected bound {:.3}, within paper bound {:.3}, max ratio {:.3}, weighted ratio {:.3}",
            report.fraction_within_bound(),
            report.fraction_within_paper_bound(),
            report.max_bound_ratio(),
            report.weighted_competitive_ratio()
        );
        // Parked reduce copies waste a little capacity, so a slice of the
        // jobs overshoot the bound — but only by a few percent (max ratio),
        // and the aggregate weighted ratio against the lower bound stays well
        // below the factor-2 guarantee of Remark 2.
        assert!(
            report.fraction_within_bound() >= 0.5,
            "only {} of jobs within the corrected bound",
            report.fraction_within_bound()
        );
        assert!(
            report.max_bound_ratio() <= 1.15,
            "max bound ratio {} too large",
            report.max_bound_ratio()
        );
        assert!(
            report.weighted_competitive_ratio() <= 2.0,
            "competitive ratio {} unexpectedly large",
            report.weighted_competitive_ratio()
        );
        // The verbatim paper bound is looser about the map phase and is
        // expected to be exceeded by some jobs on a lightly loaded cluster.
        assert!(report.fraction_within_paper_bound() <= report.fraction_within_bound() + 1e-12);
    }

    #[test]
    fn map_only_jobs_use_map_stats() {
        let j = JobSpecBuilder::new(JobId::new(0))
            .map_tasks_from_workloads(&[7.0, 7.0])
            .build();
        let trace = Trace::new(vec![j]).unwrap();
        let bounds = theorem1_bound(&trace, 1, 0.0);
        // Bound: E^m + f^s/M = 7 + 14 = 21; no extra serial term for a
        // map-only job.
        assert!((bounds[0].upper_bound - 21.0).abs() < 1e-9);
        assert!((bounds[0].paper_bound - 21.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one machine")]
    fn zero_machines_rejected() {
        let trace = Trace::empty();
        theorem1_bound(&trace, 0, 1.0);
    }

    #[test]
    fn empty_report_is_trivially_satisfied() {
        let trace = Trace::empty();
        let outcome = SimOutcome::new("x".into(), 1, vec![], 0, 0, 0, 0, 0, 0);
        let report = CompetitiveReport::new(&trace, &outcome, 1, 0.0);
        assert!(report.holds_for_all());
        assert_eq!(report.fraction_within_bound(), 1.0);
        assert_eq!(report.entries().len(), 0);
    }
}
