//! The paper's scheduling algorithms: the offline SRPT-based algorithm
//! (Algorithm 1) and the online **SRPTMS+C** task-cloning scheduler
//! (Algorithm 2), together with the analytical machinery around them
//! (effective-workload priorities, the ε-fraction machine-sharing rule, the
//! Theorem-1 flowtime bounds and the potential function of Theorem 2).
//!
//! Both schedulers implement [`mapreduce_sim::Scheduler`] and therefore run on
//! the cluster simulator unchanged, next to the baselines in
//! `mapreduce-baselines`.
//!
//! # Quick example
//!
//! ```
//! use mapreduce_sched::SrptMsC;
//! use mapreduce_sim::{SimConfig, Simulation};
//! use mapreduce_workload::WorkloadBuilder;
//!
//! let trace = WorkloadBuilder::new().num_jobs(10).build(3);
//! let mut scheduler = SrptMsC::new(0.6, 3.0);
//! let outcome = Simulation::new(SimConfig::new(16), &trace).run(&mut scheduler).unwrap();
//! assert_eq!(outcome.records().len(), 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounds;
pub mod offline;
pub mod potential;
pub mod priority;
pub mod reference;
pub mod sharing;
pub mod srptms;

pub use bounds::{theorem1_bound, theorem1_probability, CompetitiveReport, OfflineBound};
pub use offline::OfflineSrpt;
pub use potential::PotentialFunction;
pub use priority::{offline_priority, online_priority, rank_jobs_by_priority};
pub use reference::ReferenceSrptMsC;
pub use sharing::{
    epsilon_fraction_shares, epsilon_fraction_shares_into, epsilon_fraction_shares_prefix_into,
    epsilon_fraction_shares_scratch, MachineShare,
};
pub use srptms::{SrptMsC, SrptMsCConfig};
