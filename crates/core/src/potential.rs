//! The potential function Φ(t) used in the resource-augmentation analysis of
//! Theorem 2, as an executable, instrumentable quantity.
//!
//! For every task `δ^j_i` that is alive under SRPTMS+C, let
//! `y^j_i(t) = max(p^{A,j}_i(t) − p^{O,j}_i(t), 0)` be the *lag* of the
//! algorithm behind the adversary on that task (remaining work under the
//! algorithm minus remaining work under the optimal schedule, clipped at 0).
//! The per-task potential is
//!
//! ```text
//! φ^j_i(t) = w_i · y^j_i(t) / s_i(w_i · M / (ε · W(t)))
//! ```
//!
//! and the total potential is `Φ(t) = (1/ε²) · Σ_i Σ_j φ^j_i(t)`
//! (Equations (14)–(15)).
//!
//! The analysis only needs three structural properties — the boundary
//! condition `Φ(0) = Φ(∞) = 0`, that job arrivals/completions never increase
//! Φ, and the drift condition — and the unit tests of this module check the
//! first two mechanically. The module is also used by the `theorem1`
//! experiment binary to report the potential trajectory of a run, which is a
//! useful sanity check that the implementation of the sharing rule matches
//! the analysis.

use mapreduce_sim::SpeedupFunction;

/// The lag state of a single job used when evaluating the potential function:
/// the job's weight and the per-task lags `y^j_i(t)`.
#[derive(Debug, Clone, PartialEq)]
pub struct JobLag {
    /// Weight `w_i` of the job.
    pub weight: f64,
    /// Per-task lags `y^j_i(t) ≥ 0` (tasks whose lag is zero may be omitted).
    pub task_lags: Vec<f64>,
}

impl JobLag {
    /// Creates a job-lag entry.
    ///
    /// # Panics
    /// Panics if the weight is not positive or any lag is negative.
    pub fn new(weight: f64, task_lags: Vec<f64>) -> Self {
        assert!(weight > 0.0, "weight must be positive, got {weight}");
        assert!(
            task_lags.iter().all(|l| *l >= 0.0),
            "task lags must be non-negative"
        );
        JobLag { weight, task_lags }
    }
}

/// Evaluator of the potential function Φ(t) for a fixed ε and speedup family.
#[derive(Debug)]
pub struct PotentialFunction<S> {
    epsilon: f64,
    speedup: S,
    machines: usize,
}

impl<S: SpeedupFunction> PotentialFunction<S> {
    /// Creates the evaluator.
    ///
    /// # Panics
    /// Panics if `epsilon` is not in `(0, 1]` or `machines` is zero.
    pub fn new(epsilon: f64, speedup: S, machines: usize) -> Self {
        assert!(
            epsilon > 0.0 && epsilon <= 1.0,
            "epsilon must be in (0, 1], got {epsilon}"
        );
        assert!(machines > 0, "cluster must have at least one machine");
        PotentialFunction {
            epsilon,
            speedup,
            machines,
        }
    }

    /// The sharing fraction ε.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The per-task potential `w · y / s(w·M / (ε·W))` (Equation (14)).
    ///
    /// `total_weight` is `W(t)`, the total weight of alive jobs.
    pub fn task_potential(&self, weight: f64, lag: f64, total_weight: f64) -> f64 {
        if lag <= 0.0 {
            return 0.0;
        }
        let w_total = total_weight.max(weight);
        let fair_share = weight * self.machines as f64 / (self.epsilon * w_total);
        weight * lag
            / self
                .speedup
                .speedup(fair_share.max(1.0))
                .max(f64::MIN_POSITIVE)
    }

    /// Evaluates Φ(t) for the given set of alive jobs (Equation (15)).
    pub fn evaluate(&self, jobs: &[JobLag]) -> f64 {
        let total_weight: f64 = jobs.iter().map(|j| j.weight).sum();
        if total_weight <= 0.0 {
            return 0.0;
        }
        let sum: f64 = jobs
            .iter()
            .map(|j| {
                j.task_lags
                    .iter()
                    .map(|&lag| self.task_potential(j.weight, lag, total_weight))
                    .sum::<f64>()
            })
            .sum();
        sum / (self.epsilon * self.epsilon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapreduce_sim::ParetoSpeedup;
    use mapreduce_support::proptest::prelude::*;

    fn pf(epsilon: f64) -> PotentialFunction<ParetoSpeedup> {
        PotentialFunction::new(epsilon, ParetoSpeedup::new(2.0), 100)
    }

    #[test]
    fn boundary_condition_empty_system() {
        // Φ(0) = Φ(∞) = 0: no alive jobs → zero potential.
        assert_eq!(pf(0.6).evaluate(&[]), 0.0);
        // Jobs with zero lag also contribute nothing.
        let jobs = vec![JobLag::new(2.0, vec![0.0, 0.0])];
        assert_eq!(pf(0.6).evaluate(&jobs), 0.0);
    }

    #[test]
    fn potential_grows_with_lag() {
        let f = pf(0.6);
        let small = f.evaluate(&[JobLag::new(1.0, vec![10.0])]);
        let large = f.evaluate(&[JobLag::new(1.0, vec![50.0])]);
        assert!(large > small);
        assert!(small > 0.0);
    }

    #[test]
    fn completion_of_a_job_never_increases_potential() {
        let f = pf(0.5);
        let before = vec![
            JobLag::new(1.0, vec![5.0, 7.0]),
            JobLag::new(2.0, vec![3.0]),
        ];
        // Job 0 completes in the algorithm's schedule: its term disappears.
        // Removing a job also shrinks W(t), which can only *increase* the
        // remaining jobs' fair share and hence the denominator s(·) — so the
        // remaining terms do not grow either.
        let after = vec![JobLag::new(2.0, vec![3.0])];
        assert!(f.evaluate(&after) <= f.evaluate(&before) + 1e-12);
    }

    #[test]
    fn arrival_of_a_zero_lag_job_does_not_increase_potential() {
        let f = pf(0.7);
        let before = vec![JobLag::new(1.0, vec![4.0])];
        // A newly arrived job has y = 0 on all its tasks (both schedules have
        // the full work left), so it adds no term; it increases W(t), which
        // shrinks the fair share of the existing job and can only increase
        // the existing term's denominator... note s is increasing, so a
        // *smaller* share means a *smaller* denominator and a larger term —
        // this is exactly why the analysis charges arrivals to the adversary
        // as well. We only check the direct contribution here: the new job's
        // own term is zero.
        let mut after = before.clone();
        after.push(JobLag::new(5.0, vec![0.0, 0.0, 0.0]));
        let new_job_contribution: f64 = after
            .last()
            .unwrap()
            .task_lags
            .iter()
            .map(|&l| f.task_potential(5.0, l, 6.0))
            .sum();
        assert_eq!(new_job_contribution, 0.0);
    }

    #[test]
    fn smaller_epsilon_means_larger_potential_scale() {
        let jobs = vec![JobLag::new(1.0, vec![10.0]), JobLag::new(1.0, vec![10.0])];
        let tight = PotentialFunction::new(0.2, ParetoSpeedup::new(2.0), 100).evaluate(&jobs);
        let loose = PotentialFunction::new(0.9, ParetoSpeedup::new(2.0), 100).evaluate(&jobs);
        assert!(tight > loose);
    }

    #[test]
    fn validation_panics() {
        assert!(std::panic::catch_unwind(|| pf(0.0)).is_err());
        assert!(std::panic::catch_unwind(|| pf(1.5)).is_err());
        assert!(std::panic::catch_unwind(|| {
            PotentialFunction::new(0.5, ParetoSpeedup::new(2.0), 0)
        })
        .is_err());
        assert!(std::panic::catch_unwind(|| JobLag::new(0.0, vec![])).is_err());
        assert!(std::panic::catch_unwind(|| JobLag::new(1.0, vec![-1.0])).is_err());
    }

    proptest! {
        #[test]
        fn prop_potential_is_nonnegative(
            weights in proptest::collection::vec(0.1f64..10.0, 1..10),
            lag in 0.0f64..1000.0,
            eps in 0.05f64..1.0,
        ) {
            let jobs: Vec<JobLag> = weights
                .iter()
                .map(|&w| JobLag::new(w, vec![lag]))
                .collect();
            let f = PotentialFunction::new(eps, ParetoSpeedup::new(2.0), 50);
            prop_assert!(f.evaluate(&jobs) >= 0.0);
        }

        #[test]
        fn prop_potential_monotone_in_lag(
            lag_a in 0.0f64..500.0,
            extra in 0.0f64..500.0,
        ) {
            let f = pf(0.6);
            let a = f.evaluate(&[JobLag::new(1.0, vec![lag_a])]);
            let b = f.evaluate(&[JobLag::new(1.0, vec![lag_a + extra])]);
            prop_assert!(b + 1e-9 >= a);
        }
    }
}
