//! Algorithm 2: **SRPTMS+C** — Shortest Remaining Processing Time based
//! Machine Sharing plus Cloning.
//!
//! At every decision instant the scheduler:
//!
//! 1. collects the alive jobs that still have unscheduled tasks (`ψ^s(l)`),
//! 2. ranks them by `w_i / U_i(l)` where `U_i(l)` is the remaining effective
//!    workload of Equation (4),
//! 3. computes the ε-fraction machine shares `g_i(l)`
//!    ([`crate::sharing::epsilon_fraction_shares`]),
//! 4. walks the jobs in priority order and gives each one
//!    `ξ_i(l) = g_i(l) − σ_i(l)` *extra* machines (never taking machines away
//!    from a job that currently holds more than its share — the allocation is
//!    non-preemptive), clipped to the machines actually available, and
//! 5. inside a job, launches unscheduled **map** tasks first; reduce tasks are
//!    only launched once the Map phase has completed. When a job receives
//!    more machines than it has unscheduled tasks, the surplus is spent on
//!    **clones**: every unscheduled task of the phase receives
//!    `⌊extra/tasks⌋` copies (the first `extra mod tasks` tasks one more), so
//!    the allocated share is fully used. When machines are scarcer than
//!    tasks, one copy each is launched for as many tasks as fit.
//!
//! Setting `ε = 1` makes the scheduler behave like Hadoop's (weighted) fair
//! scheduler, `ε → 0` approaches pure SRPT; `ε ≈ 0.6` is the sweet spot in
//! the paper's evaluation (Fig. 1). Cloning can be disabled for ablations.

use crate::priority::online_priority;
use crate::sharing::{
    epsilon_fraction_shares_prefix_into, epsilon_fraction_shares_scratch, MachineShare,
};
use mapreduce_sim::{Action, ClusterState, JobState, Scheduler};
use mapreduce_workload::{JobId, Phase, TaskId};

/// Configuration of the SRPTMS+C scheduler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SrptMsCConfig {
    /// The sharing fraction `ε ∈ (0, 1]` of Section V-A.
    pub epsilon: f64,
    /// The pessimism factor `r ≥ 0` multiplying the standard deviation in the
    /// effective workload (Equations (2) and (4)).
    pub r: f64,
    /// Whether surplus machines are spent on clones (Algorithm 2's behaviour).
    /// Disabling this yields the "machine sharing only" ablation.
    pub cloning: bool,
    /// Whether machines left over after the ε-fraction pass are backfilled
    /// with unscheduled tasks of the remaining (lower-priority) alive jobs,
    /// one copy each, in priority order.
    ///
    /// The paper's pseudo-code only hands machines to jobs with a positive
    /// share `g_i(l) > 0`, which taken literally lets machines idle while the
    /// lowest-priority jobs starve; at the same time the paper states that
    /// `ε = 1` "reduces to the fair scheduler in Hadoop", which is
    /// work-conserving. This flag resolves that ambiguity in favour of work
    /// conservation (the default); setting it to `false` gives the literal,
    /// non-work-conserving reading, kept for the ablation experiment.
    /// Backfilled jobs never receive clones — cloning remains the privilege
    /// of the ε-fraction share.
    pub work_conserving: bool,
    /// Upper bound on the number of copies requested per task in a single
    /// decision. The paper's formula `⌊(g_i−σ_i)/c_i⌋` can assign arbitrarily
    /// many clones when few jobs are alive (a lone job's share is the whole
    /// cluster), but the concave speedup `s(x)` has essentially no marginal
    /// gain beyond a handful of copies (for the Pareto model with α = 2 the
    /// eighth copy buys < 2 %), so additional clones only burn machines that
    /// non-preemption then withholds from later arrivals. The default cap of
    /// 8 keeps the algorithm's behaviour at small alive-job counts consistent
    /// with its behaviour in the paper's 12 000-machine regime; see DESIGN.md.
    pub max_copies_per_task: usize,
}

impl SrptMsCConfig {
    /// Creates a configuration with the given `ε` and `r` and default
    /// settings otherwise.
    ///
    /// # Panics
    /// Panics if `epsilon` is not in `(0, 1]` or `r` is negative/not finite.
    pub fn new(epsilon: f64, r: f64) -> Self {
        assert!(
            epsilon > 0.0 && epsilon <= 1.0,
            "epsilon must be in (0, 1], got {epsilon}"
        );
        assert!(
            r.is_finite() && r >= 0.0,
            "r must be a non-negative finite number, got {r}"
        );
        SrptMsCConfig {
            epsilon,
            r,
            cloning: true,
            work_conserving: true,
            max_copies_per_task: 8,
        }
    }

    /// Disables (or re-enables) cloning.
    pub fn with_cloning(mut self, cloning: bool) -> Self {
        self.cloning = cloning;
        self
    }

    /// Disables (or re-enables) the work-conserving backfill pass (see
    /// [`SrptMsCConfig::work_conserving`]).
    pub fn with_work_conserving(mut self, work_conserving: bool) -> Self {
        self.work_conserving = work_conserving;
        self
    }

    /// Sets the per-task copy cap.
    ///
    /// # Panics
    /// Panics if `cap` is zero.
    pub fn with_max_copies_per_task(mut self, cap: usize) -> Self {
        assert!(cap >= 1, "copy cap must be at least 1");
        self.max_copies_per_task = cap;
        self
    }
}

impl Default for SrptMsCConfig {
    /// The configuration the paper settles on after Figs. 1–2: `ε = 0.6`,
    /// `r = 3`.
    fn default() -> Self {
        SrptMsCConfig::new(0.6, 3.0)
    }
}

/// The SRPTMS+C online scheduler (Algorithm 2).
///
/// The decision path is incremental: when run by the engine, the candidate
/// jobs arrive pre-ranked by `w_i / U_i(l)` (maintained across events via
/// [`Scheduler::priority_r`] — no per-wakeup sort), unscheduled tasks are
/// enumerated from the per-phase free-lists, and the ranked/share/launch
/// scratch buffers are reused across decisions.
#[derive(Debug, Clone)]
pub struct SrptMsC {
    config: SrptMsCConfig,
    name: String,
    /// Scratch: `(id, weight)` of the candidates in priority order.
    ranked: Vec<(JobId, f64)>,
    /// Scratch: the ε-fraction shares, one per candidate.
    shares: Vec<MachineShare>,
    /// Scratch: the rounding's eligible-remainder working set.
    round_scratch: Vec<(f64, usize)>,
    /// Scratch: per candidate, how many unscheduled tasks (a *prefix* of the
    /// job's free-list — the ε-pass launches in free-list order) were
    /// launched this decision, so the backfill pass resumes after them
    /// without any per-task membership checks.
    launched_prefix: Vec<usize>,
}

impl SrptMsC {
    /// Creates the scheduler with the given `ε` and `r`.
    ///
    /// # Panics
    /// Panics if the parameters are invalid (see [`SrptMsCConfig::new`]).
    pub fn new(epsilon: f64, r: f64) -> Self {
        Self::with_config(SrptMsCConfig::new(epsilon, r))
    }

    /// Creates the scheduler from a full configuration.
    pub fn with_config(config: SrptMsCConfig) -> Self {
        let name = if config.cloning {
            format!("srptms+c(eps={},r={})", config.epsilon, config.r)
        } else {
            format!("srptms(eps={},r={})", config.epsilon, config.r)
        };
        SrptMsC {
            config,
            name,
            ranked: Vec::new(),
            shares: Vec::new(),
            round_scratch: Vec::new(),
            launched_prefix: Vec::new(),
        }
    }

    /// The scheduler's configuration.
    pub fn config(&self) -> &SrptMsCConfig {
        &self.config
    }

    /// The launchable phase of a job: map tasks first; reduce tasks only once
    /// the Map phase completed.
    fn launchable_phase(job: &JobState) -> Option<Phase> {
        if job.num_unscheduled(Phase::Map) > 0 {
            Some(Phase::Map)
        } else if job.map_phase_complete() && job.num_unscheduled(Phase::Reduce) > 0 {
            Some(Phase::Reduce)
        } else {
            None
        }
    }

    /// Decides how to spend `machines` newly granted machines on one job:
    /// the task-scheduling procedure of Algorithm 2. Appends the launch
    /// actions and returns `(machines used, unscheduled tasks launched)` —
    /// the launched tasks are always a prefix of the job's unscheduled
    /// free-list, which is what lets the backfill pass skip them in `O(1)`.
    fn schedule_tasks_for_job(
        config: &SrptMsCConfig,
        job: &JobState,
        machines: usize,
        actions: &mut Vec<Action>,
    ) -> (usize, usize) {
        if machines == 0 {
            return (0, 0);
        }
        let Some(phase) = Self::launchable_phase(job) else {
            return (0, 0);
        };
        let unscheduled = job.unscheduled_indices(phase);
        let count = unscheduled.len();
        if count == 0 {
            return (0, 0);
        }

        let mut used = 0usize;
        let tasks_launched;
        if machines <= count || !config.cloning {
            // Scarce machines (or cloning disabled): one copy each for as many
            // tasks as we can fit.
            tasks_launched = machines.min(count);
            for &index in unscheduled.iter().take(machines) {
                let task = TaskId::new(job.id(), phase, index);
                actions.push(Action::Launch { task, copies: 1 });
                used += 1;
            }
        } else {
            // Surplus machines: clone every unscheduled task so the whole
            // share is used. Task k gets floor(machines/count) copies, plus
            // one more for the first (machines mod count) tasks.
            tasks_launched = count;
            let base = machines / count;
            let extra = machines % count;
            for (k, &index) in unscheduled.iter().enumerate() {
                let copies = (base + usize::from(k < extra)).min(config.max_copies_per_task);
                if copies > 0 {
                    let task = TaskId::new(job.id(), phase, index);
                    actions.push(Action::Launch { task, copies });
                    used += copies;
                }
            }
        }
        (used, tasks_launched)
    }
}

impl Default for SrptMsC {
    fn default() -> Self {
        SrptMsC::with_config(SrptMsCConfig::default())
    }
}

impl Scheduler for SrptMsC {
    fn name(&self) -> &str {
        &self.name
    }

    fn priority_r(&self) -> Option<f64> {
        Some(self.config.r)
    }

    fn schedule(&mut self, state: &ClusterState<'_>) -> Vec<Action> {
        let mut actions = Vec::new();
        self.schedule_into(state, &mut actions);
        actions
    }

    fn schedule_into(&mut self, state: &ClusterState<'_>, actions: &mut Vec<Action>) {
        let mut available = state.available_machines();
        if available == 0 {
            return;
        }

        // ψ^s(l): alive jobs that still have unscheduled tasks, ranked by
        // decreasing w_i / U_i(l), ties by id. Engine-built snapshots carry
        // the order as a demand-gated view (only the prefix the passes below
        // actually read gets sorted); hand-built snapshots fall back to
        // collecting and sorting.
        let entries = state.ranked_entries(self.config.r);
        let fallback: Vec<&JobState> = match entries {
            Some(_) => Vec::new(),
            None => {
                let mut c: Vec<&JobState> = state
                    .alive_jobs()
                    .filter(|j| j.total_unscheduled() > 0)
                    .collect();
                c.sort_by(|a, b| {
                    let pa = online_priority(a, self.config.r);
                    let pb = online_priority(b, self.config.r);
                    pb.total_cmp(&pa).then_with(|| a.id().cmp(&b.id()))
                });
                c
            }
        };
        let candidate = |i: usize| match entries {
            Some(e) => state.job_at(e.entry(i).1),
            None => fallback[i],
        };
        let num_candidates = entries.map_or(fallback.len(), |e| e.len());
        if num_candidates == 0 {
            return;
        }

        let config = self.config;
        match entries {
            // Prefix-truncated walk: the ε-fraction rule zeroes every share
            // past the `(1−ε)·W(l)` cumulative-weight boundary, so only the
            // jobs inside the boundary are pulled from the ranked order —
            // `O(prefix)` job derefs instead of `O(alive)`. `W(l)` is the
            // engine's incrementally maintained unscheduled-weight aggregate
            // (exact for the integer-valued job weights every committed
            // workload uses, hence bit-identical to the full walk's fold).
            Some(e) => epsilon_fraction_shares_prefix_into(
                e.iter().map(|(_, idx)| {
                    let job = state.job_at(idx);
                    (job.id(), job.weight())
                }),
                state.total_unscheduled_weight(),
                state.total_machines(),
                config.epsilon,
                &mut self.shares,
                &mut self.round_scratch,
            ),
            // Hand-built snapshots carry no aggregate: materialise the whole
            // candidate list and run the full walk.
            None => {
                self.ranked.clear();
                self.ranked.extend((0..num_candidates).map(|i| {
                    let job = candidate(i);
                    (job.id(), job.weight())
                }));
                epsilon_fraction_shares_scratch(
                    &self.ranked,
                    state.total_machines(),
                    config.epsilon,
                    &mut self.shares,
                    &mut self.round_scratch,
                );
            }
        }
        state.note_ranked_prefix(self.shares.len());

        // Launchable tasks not yet launched this decision: the ε-pass and
        // the backfill only ever launch launchable unscheduled tasks, so
        // counting launches against the O(1) aggregate tells both passes
        // when nothing launchable remains anywhere.
        let mut launchable_left = state.total_launchable_tasks();

        self.launched_prefix.clear();
        self.launched_prefix.resize(self.shares.len(), 0);
        for (i, share) in self.shares.iter().enumerate() {
            let job = candidate(i);
            if available == 0 {
                break;
            }
            if share.machines == 0 {
                // Shares follow priority order, so the first job outside the
                // ε-fraction (fractional share exactly zero) ends the pass:
                // every later job is outside it too.
                if share.fractional == 0.0 {
                    break;
                }
                continue;
            }
            // σ_i(l): machines the job already holds (running copies of its
            // tasks, clones included). The allocation is non-preemptive: if
            // the job holds more than its share we simply give it nothing new.
            let sigma = job.active_copies();
            let xi = share.machines.saturating_sub(sigma);
            if xi == 0 {
                continue;
            }
            let grant = xi.min(available);
            let (used, tasks_launched) = Self::schedule_tasks_for_job(&config, job, grant, actions);
            available -= used;
            launchable_left = launchable_left.saturating_sub(tasks_launched);
            self.launched_prefix[i] = tasks_launched;
        }

        // Work-conserving backfill: machines the ε-fraction could not use go
        // to the remaining unscheduled tasks, one copy each, in priority
        // order (no cloning outside the ε-fraction share). The ε-pass
        // launched a prefix of each job's free-list, so the backfill resumes
        // right after it — no per-task membership checks.
        if config.work_conserving && available > 0 {
            // `launched_prefix` only covers the ε-fraction prefix; every
            // candidate past it got nothing in the ε-pass (skip = 0). Both
            // early exits are action-neutral: with no launchable task left,
            // every remaining candidate's `unscheduled[skip..]` launchable
            // slice is empty, and with no machine left no launch can follow —
            // the old code kept scanning only to discover the same, which
            // would force the demand-gated order to materialise in full.
            'backfill: for i in 0..num_candidates {
                if launchable_left == 0 || available == 0 {
                    break;
                }
                let skip = self.launched_prefix.get(i).copied().unwrap_or(0);
                let job = candidate(i);
                let Some(phase) = Self::launchable_phase(job) else {
                    continue;
                };
                let unscheduled = job.unscheduled_indices(phase);
                if skip >= unscheduled.len() {
                    continue;
                }
                for &index in &unscheduled[skip..] {
                    if available == 0 {
                        break 'backfill;
                    }
                    actions.push(Action::Launch {
                        task: TaskId::new(job.id(), phase, index),
                        copies: 1,
                    });
                    available -= 1;
                    launchable_left -= 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapreduce_sim::{SimConfig, Simulation};
    use mapreduce_workload::{
        DurationDistribution, JobSpecBuilder, PhaseStats, Trace, WorkloadBuilder,
    };

    fn run(trace: &Trace, machines: usize, scheduler: &mut SrptMsC) -> mapreduce_sim::SimOutcome {
        Simulation::new(SimConfig::new(machines).with_seed(11), trace)
            .run(scheduler)
            .unwrap()
    }

    #[test]
    fn completes_every_job() {
        let trace = WorkloadBuilder::new()
            .num_jobs(40)
            .arrivals(mapreduce_workload::ArrivalProcess::Poisson {
                mean_interarrival: 20.0,
            })
            .map_tasks_per_job(2, 8)
            .reduce_tasks_per_job(1, 3)
            .weights(&[1.0, 2.0, 6.0])
            .build(1);
        let outcome = run(&trace, 16, &mut SrptMsC::new(0.6, 3.0));
        assert_eq!(outcome.records().len(), 40);
        assert!(outcome.records().iter().all(|r| r.completion >= r.arrival));
    }

    #[test]
    fn clones_are_made_when_machines_are_plentiful() {
        // One small job alone in a big cluster: its tasks should be cloned.
        let job = JobSpecBuilder::new(JobId::new(0))
            .weight(1.0)
            .map_tasks_from_workloads(&[100.0, 100.0])
            .map_stats(PhaseStats::new(100.0, 30.0))
            .map_distribution(DurationDistribution::lognormal_from_moments(100.0, 30.0).unwrap())
            .build();
        let trace = Trace::new(vec![job]).unwrap();
        let outcome = run(&trace, 10, &mut SrptMsC::new(0.6, 3.0));
        // 2 tasks, 10 machines → the scheduler should have launched clones.
        assert!(
            outcome.total_copies > 2,
            "expected clones, got {}",
            outcome.total_copies
        );
        assert!(outcome.mean_copies_per_task() > 1.0);
    }

    #[test]
    fn cloning_can_be_disabled() {
        let job = JobSpecBuilder::new(JobId::new(0))
            .weight(1.0)
            .map_tasks_from_workloads(&[100.0, 100.0])
            .build();
        let trace = Trace::new(vec![job]).unwrap();
        let cfg = SrptMsCConfig::new(0.6, 3.0).with_cloning(false);
        let outcome = run(&trace, 10, &mut SrptMsC::with_config(cfg));
        assert_eq!(outcome.total_copies, 2);
    }

    #[test]
    fn cloning_reduces_flowtime_under_heavy_tailed_durations() {
        // Heavy-tailed tasks with resampled clones: SRPTMS+C should beat its
        // no-cloning ablation on mean flowtime. Shape 2.2 keeps the variance
        // finite so the scheduler-visible PhaseStats are well defined.
        let dist = DurationDistribution::pareto_from_mean(100.0, 2.2).unwrap();
        let mut jobs = Vec::new();
        use mapreduce_support::rng::SimRng;
        let mut rng = SimRng::seed_from_u64(99);
        for i in 0..15 {
            let workloads = dist.sample_n(&mut rng, 3);
            jobs.push(
                JobSpecBuilder::new(JobId::new(i))
                    .weight(1.0)
                    .arrival(i * 40)
                    .map_tasks_from_workloads(&workloads)
                    .map_stats(PhaseStats::new(dist.mean(), dist.std_dev()))
                    .map_distribution(dist.clone())
                    .build(),
            );
        }
        let trace = Trace::new(jobs).unwrap();

        let with_clones = run(&trace, 24, &mut SrptMsC::new(0.6, 3.0));
        let without = run(
            &trace,
            24,
            &mut SrptMsC::with_config(SrptMsCConfig::new(0.6, 3.0).with_cloning(false)),
        );
        assert!(
            with_clones.mean_flowtime() <= without.mean_flowtime(),
            "cloning should not hurt: {} vs {}",
            with_clones.mean_flowtime(),
            without.mean_flowtime()
        );
    }

    #[test]
    fn reduce_tasks_wait_for_map_phase() {
        // A job with one long map task and one reduce task: the reduce task
        // must not be scheduled until the map task finished, so no machine is
        // wasted holding it (SRPTMS+C behaviour per Section V-B).
        let job = JobSpecBuilder::new(JobId::new(0))
            .map_tasks_from_workloads(&[50.0])
            .reduce_tasks_from_workloads(&[10.0])
            .build();
        let trace = Trace::new(vec![job]).unwrap();
        let outcome = run(&trace, 4, &mut SrptMsC::new(1.0, 0.0));
        let record = outcome.record(JobId::new(0)).unwrap();
        assert_eq!(record.completion, 60);
    }

    #[test]
    fn small_jobs_jump_ahead_of_large_jobs_once_machines_free_up() {
        // A huge job saturates the cluster; a tiny job arrives later. The
        // allocation is non-preemptive, so the tiny job has to wait for the
        // first batch of huge tasks to finish — but as soon as machines free
        // up (slot 200) the tiny job's far higher w/U priority wins them, so
        // it completes right after that and far ahead of the huge job.
        let huge = JobSpecBuilder::new(JobId::new(0))
            .weight(1.0)
            .arrival(0)
            .map_tasks_from_workloads(&[200.0; 12])
            .build();
        let tiny = JobSpecBuilder::new(JobId::new(1))
            .weight(1.0)
            .arrival(10)
            .map_tasks_from_workloads(&[5.0])
            .build();
        let trace = Trace::new(vec![huge, tiny]).unwrap();
        let outcome = run(&trace, 4, &mut SrptMsC::new(0.6, 0.0));
        let tiny_rec = outcome.record(JobId::new(1)).unwrap();
        let huge_rec = outcome.record(JobId::new(0)).unwrap();
        assert!(
            tiny_rec.completion <= 210,
            "tiny job should complete right after the first wave, got {}",
            tiny_rec.completion
        );
        assert!(huge_rec.flowtime() > tiny_rec.flowtime());

        // If both jobs are present from the start, the tiny job's higher
        // priority wins it a machine immediately and it finishes right away.
        let together = Trace::new(vec![
            JobSpecBuilder::new(JobId::new(0))
                .weight(1.0)
                .map_tasks_from_workloads(&[200.0; 12])
                .build(),
            JobSpecBuilder::new(JobId::new(1))
                .weight(1.0)
                .map_tasks_from_workloads(&[5.0])
                .build(),
        ])
        .unwrap();
        let both = run(&together, 4, &mut SrptMsC::new(0.6, 0.0));
        assert!(both.record(JobId::new(1)).unwrap().flowtime() <= 5);
    }

    #[test]
    fn epsilon_one_behaves_like_fair_sharing() {
        let trace = WorkloadBuilder::new()
            .num_jobs(10)
            .map_tasks_per_job(2, 4)
            .build(7);
        let outcome = run(&trace, 8, &mut SrptMsC::new(1.0, 0.0));
        assert_eq!(outcome.records().len(), 10);
    }

    #[test]
    fn config_validation() {
        assert!(std::panic::catch_unwind(|| SrptMsCConfig::new(0.0, 1.0)).is_err());
        assert!(std::panic::catch_unwind(|| SrptMsCConfig::new(1.5, 1.0)).is_err());
        assert!(std::panic::catch_unwind(|| SrptMsCConfig::new(0.5, -1.0)).is_err());
        assert!(std::panic::catch_unwind(
            || SrptMsCConfig::new(0.5, 1.0).with_max_copies_per_task(0)
        )
        .is_err());
        let cfg = SrptMsCConfig::default();
        assert_eq!(cfg.epsilon, 0.6);
        assert_eq!(cfg.r, 3.0);
        assert!(cfg.cloning);
    }

    #[test]
    fn name_reflects_configuration() {
        assert!(SrptMsC::new(0.6, 3.0).name().contains("srptms+c"));
        let no_clone = SrptMsC::with_config(SrptMsCConfig::new(0.5, 1.0).with_cloning(false));
        assert!(!no_clone.name().contains("+c"));
        assert_eq!(SrptMsC::default().config().epsilon, 0.6);
    }

    #[test]
    fn deterministic_across_runs() {
        let trace = WorkloadBuilder::new().num_jobs(20).build(3);
        let a = run(&trace, 8, &mut SrptMsC::new(0.6, 3.0));
        let b = run(&trace, 8, &mut SrptMsC::new(0.6, 3.0));
        assert_eq!(a, b);
    }
}
