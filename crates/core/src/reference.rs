//! Frozen pre-optimization reference implementation of SRPTMS+C.
//!
//! [`ReferenceSrptMsC`] is a verbatim copy of the scheduler as it existed
//! before the incremental-state optimization (PR 2): it re-sorts the alive
//! jobs on every wakeup, re-derives every priority from the job statistics,
//! enumerates unscheduled tasks by scanning the full task vectors and
//! allocates its working sets per decision. It deliberately touches **none**
//! of the engine's incremental indices (no [`Scheduler::priority_r`], no
//! free-lists), so it exercises the naive path end to end.
//!
//! It exists for two purposes:
//! * the golden-equivalence tests assert that the optimized [`crate::SrptMsC`]
//!   produces a bit-identical `SimOutcome` on randomized workloads, and
//! * the `engine_fullscale` benchmark runs it as the recorded pre-change
//!   baseline so the performance trajectory in `BENCH_engine.json` shows the
//!   win against the same binary.
//!
//! Do not "improve" this module; its value is that it does not change.

use crate::sharing::MachineShare;
use crate::srptms::SrptMsCConfig;
use mapreduce_sim::{Action, ClusterState, JobState, Scheduler};
use mapreduce_workload::{JobId, Phase};

/// The pre-optimization ε-fraction shares, frozen verbatim (fresh `Vec` per
/// call, full `partial_cmp` sort inside the rounding) so the reference does
/// not share the rewritten `crate::sharing` code path it is the oracle for.
fn reference_epsilon_fraction_shares(
    jobs: &[(JobId, f64)],
    total_machines: usize,
    epsilon: f64,
) -> Vec<MachineShare> {
    assert!(
        epsilon > 0.0 && epsilon <= 1.0,
        "epsilon must be in (0, 1], got {epsilon}"
    );
    assert!(
        jobs.iter().all(|(_, w)| *w > 0.0),
        "job weights must be positive"
    );
    if jobs.is_empty() || total_machines == 0 {
        return jobs
            .iter()
            .map(|&(job, _)| MachineShare {
                job,
                fractional: 0.0,
                machines: 0,
            })
            .collect();
    }

    let total_weight: f64 = jobs.iter().map(|(_, w)| w).sum();
    let m = total_machines as f64;
    let threshold = (1.0 - epsilon) * total_weight;

    let mut suffix_weight = total_weight;
    let mut shares = Vec::with_capacity(jobs.len());
    for &(job, weight) in jobs {
        let w_i = suffix_weight;
        let fractional = if w_i - weight >= threshold {
            weight * m / (epsilon * total_weight)
        } else if w_i < threshold {
            0.0
        } else {
            (w_i - threshold) * m / (epsilon * total_weight)
        };
        shares.push(MachineShare {
            job,
            fractional,
            machines: 0,
        });
        suffix_weight -= weight;
    }

    reference_largest_remainder_round(&mut shares, total_machines);
    shares
}

/// The pre-optimization largest-remainder rounding: full sort with
/// `partial_cmp(..).unwrap_or(Equal)`, exactly as it was.
fn reference_largest_remainder_round(shares: &mut [MachineShare], total_machines: usize) {
    let mut assigned = 0usize;
    let mut remainders: Vec<(f64, usize)> = Vec::with_capacity(shares.len());
    for (idx, share) in shares.iter_mut().enumerate() {
        let floor = share.fractional.floor() as usize;
        share.machines = floor;
        assigned += floor;
        remainders.push((share.fractional - floor as f64, idx));
    }
    let mut leftover = total_machines.saturating_sub(assigned);
    remainders.sort_by(|a, b| {
        b.0.partial_cmp(&a.0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.1.cmp(&b.1))
    });
    for (rem, idx) in remainders {
        if leftover == 0 {
            break;
        }
        if rem > 0.0 || shares[idx].fractional > 0.0 {
            shares[idx].machines += 1;
            leftover -= 1;
        }
    }
}

/// The pre-optimization SRPTMS+C scheduler (see the module docs).
///
/// Reports the same [`Scheduler::name`] as the optimized implementation so
/// outcome comparisons can use full `SimOutcome` equality.
#[derive(Debug, Clone)]
pub struct ReferenceSrptMsC {
    config: SrptMsCConfig,
    name: String,
}

impl ReferenceSrptMsC {
    /// Creates the reference scheduler with the given `ε` and `r`.
    ///
    /// # Panics
    /// Panics if the parameters are invalid (see [`SrptMsCConfig::new`]).
    pub fn new(epsilon: f64, r: f64) -> Self {
        Self::with_config(SrptMsCConfig::new(epsilon, r))
    }

    /// Creates the reference scheduler from a full configuration.
    pub fn with_config(config: SrptMsCConfig) -> Self {
        let name = if config.cloning {
            format!("srptms+c(eps={},r={})", config.epsilon, config.r)
        } else {
            format!("srptms(eps={},r={})", config.epsilon, config.r)
        };
        ReferenceSrptMsC { config, name }
    }

    /// The online priority `w_i / U_i(l)`, recomputed from the job statistics
    /// exactly as the pre-optimization code did.
    fn online_priority(job: &JobState, r: f64) -> f64 {
        let u = job.remaining_effective_workload(r);
        if u > 0.0 {
            job.weight() / u
        } else {
            f64::INFINITY
        }
    }

    /// Number of unscheduled tasks of a phase by scanning the task vector.
    fn scan_num_unscheduled(job: &JobState, phase: Phase) -> usize {
        job.tasks(phase)
            .iter()
            .filter(|t| t.is_unscheduled())
            .count()
    }

    fn schedule_tasks_for_job(&self, job: &JobState, machines: usize) -> (Vec<Action>, usize) {
        let mut actions = Vec::new();
        if machines == 0 {
            return (actions, 0);
        }

        let phase = if Self::scan_num_unscheduled(job, Phase::Map) > 0 {
            Phase::Map
        } else if job.map_phase_complete() && Self::scan_num_unscheduled(job, Phase::Reduce) > 0 {
            Phase::Reduce
        } else {
            return (actions, 0);
        };

        let unscheduled: Vec<_> = job
            .tasks(phase)
            .iter()
            .filter(|t| t.is_unscheduled())
            .map(|t| t.id())
            .collect();
        let count = unscheduled.len();
        if count == 0 {
            return (actions, 0);
        }

        let mut used = 0usize;
        if machines <= count || !self.config.cloning {
            for task in unscheduled.into_iter().take(machines) {
                actions.push(Action::Launch { task, copies: 1 });
                used += 1;
            }
        } else {
            let base = machines / count;
            let extra = machines % count;
            for (k, task) in unscheduled.into_iter().enumerate() {
                let copies = (base + usize::from(k < extra)).min(self.config.max_copies_per_task);
                if copies > 0 {
                    actions.push(Action::Launch { task, copies });
                    used += copies;
                }
            }
        }
        (actions, used)
    }
}

impl Scheduler for ReferenceSrptMsC {
    fn name(&self) -> &str {
        &self.name
    }

    fn schedule(&mut self, state: &ClusterState<'_>) -> Vec<Action> {
        let mut available = state.available_machines();
        if available == 0 {
            return Vec::new();
        }

        // ψ^s(l): alive jobs that still have unscheduled tasks, re-sorted on
        // every wakeup with every priority recomputed from scratch.
        let mut candidates: Vec<&JobState> = state
            .alive_jobs()
            .filter(|j| j.total_unscheduled() > 0)
            .collect();
        if candidates.is_empty() {
            return Vec::new();
        }
        candidates.sort_by(|a, b| {
            let pa = Self::online_priority(a, self.config.r);
            let pb = Self::online_priority(b, self.config.r);
            pb.partial_cmp(&pa)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.id().cmp(&b.id()))
        });

        let ranked: Vec<(JobId, f64)> = candidates.iter().map(|j| (j.id(), j.weight())).collect();
        let shares =
            reference_epsilon_fraction_shares(&ranked, state.total_machines(), self.config.epsilon);

        let mut actions = Vec::new();
        let mut launched: std::collections::HashSet<mapreduce_workload::TaskId> =
            std::collections::HashSet::new();
        for (job, share) in candidates.iter().zip(shares.iter()) {
            if available == 0 {
                break;
            }
            if share.machines == 0 {
                continue;
            }
            let sigma = job.active_copies();
            let xi = share.machines.saturating_sub(sigma);
            if xi == 0 {
                continue;
            }
            let grant = xi.min(available);
            let (job_actions, used) = self.schedule_tasks_for_job(job, grant);
            for action in &job_actions {
                if let Action::Launch { task, .. } = action {
                    launched.insert(*task);
                }
            }
            actions.extend(job_actions);
            available -= used;
        }

        if self.config.work_conserving && available > 0 {
            'backfill: for job in &candidates {
                let phase = if Self::scan_num_unscheduled(job, Phase::Map) > 0 {
                    Phase::Map
                } else if job.map_phase_complete()
                    && Self::scan_num_unscheduled(job, Phase::Reduce) > 0
                {
                    Phase::Reduce
                } else {
                    continue;
                };
                for task in job.tasks(phase).iter().filter(|t| t.is_unscheduled()) {
                    if available == 0 {
                        break 'backfill;
                    }
                    if launched.contains(&task.id()) {
                        continue;
                    }
                    actions.push(Action::Launch {
                        task: task.id(),
                        copies: 1,
                    });
                    launched.insert(task.id());
                    available -= 1;
                }
            }
        }
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapreduce_sim::{SimConfig, Simulation};
    use mapreduce_workload::WorkloadBuilder;

    #[test]
    fn reference_reports_the_optimized_name() {
        assert_eq!(
            ReferenceSrptMsC::new(0.6, 3.0).name(),
            crate::SrptMsC::new(0.6, 3.0).name()
        );
    }

    #[test]
    fn reference_completes_workloads() {
        let trace = WorkloadBuilder::new().num_jobs(20).build(5);
        let outcome = Simulation::new(SimConfig::new(8).with_seed(5), &trace)
            .run(&mut ReferenceSrptMsC::new(0.6, 3.0))
            .unwrap();
        assert_eq!(outcome.records().len(), 20);
    }
}
