//! Algorithm 1: the offline SRPT-based scheduler for bulk arrivals.
//!
//! All jobs are assumed to arrive at time 0. The scheduler sorts jobs once by
//! the static priority `w_i / φ_i` (Equation (2)) and, whenever a machine is
//! free, hands it a task from the highest-priority job that still has
//! unscheduled tasks — map tasks first, then reduce tasks. No clones are made
//! (with more tasks than machines, cloning cannot help when `s(x) ≤ x`, as
//! argued in Section IV via [3]).
//!
//! Reduce tasks may be launched before their job's Map phase completes; they
//! then occupy their machine without progressing, exactly as the algorithm
//! (and its analysis in Lemma 1/Theorem 1) assumes. This "hold the machine"
//! behaviour is what lets the analysis argue that once a job starts draining
//! it finishes within `E^r + rσ^r` of its last reduce-task launch.
//!
//! The type also works on traces with staggered arrivals (it simply ignores
//! jobs that have not arrived yet), but the competitive guarantee of
//! Theorem 1 only covers the bulk-arrival case.

use crate::priority::offline_priority;
use mapreduce_sim::{Action, ClusterState, Scheduler};
use mapreduce_workload::Phase;

/// The offline SRPT scheduler of Algorithm 1.
#[derive(Debug, Clone)]
pub struct OfflineSrpt {
    /// Pessimism factor `r` multiplying the standard deviation in the
    /// effective workload.
    r: f64,
    name: String,
}

impl OfflineSrpt {
    /// Creates the scheduler with the given pessimism factor `r ≥ 0`.
    ///
    /// # Panics
    /// Panics if `r` is negative or not finite.
    pub fn new(r: f64) -> Self {
        assert!(
            r.is_finite() && r >= 0.0,
            "r must be a non-negative finite number, got {r}"
        );
        OfflineSrpt {
            r,
            name: format!("offline-srpt(r={r})"),
        }
    }

    /// The pessimism factor `r`.
    pub fn r(&self) -> f64 {
        self.r
    }
}

impl Default for OfflineSrpt {
    fn default() -> Self {
        OfflineSrpt::new(0.0)
    }
}

impl Scheduler for OfflineSrpt {
    fn name(&self) -> &str {
        &self.name
    }

    fn schedule(&mut self, state: &ClusterState<'_>) -> Vec<Action> {
        let mut actions = Vec::new();
        self.schedule_into(state, &mut actions);
        actions
    }

    fn schedule_into(&mut self, state: &ClusterState<'_>, actions: &mut Vec<Action>) {
        let mut budget = state.available_machines();
        if budget == 0 {
            return;
        }

        // Sort alive jobs by decreasing static priority w_i / φ_i; ties by id.
        let mut jobs: Vec<_> = state
            .alive_jobs()
            .filter(|j| j.total_unscheduled() > 0)
            .collect();
        jobs.sort_by(|a, b| {
            let pa = offline_priority(a.spec(), self.r);
            let pb = offline_priority(b.spec(), self.r);
            pb.partial_cmp(&pa)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.id().cmp(&b.id()))
        });

        for job in jobs {
            // Map tasks strictly before reduce tasks within the same job.
            for phase in [Phase::Map, Phase::Reduce] {
                for task in job.unscheduled_tasks(phase) {
                    if budget == 0 {
                        return;
                    }
                    actions.push(Action::Launch {
                        task: task.id(),
                        copies: 1,
                    });
                    budget -= 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapreduce_sim::{SimConfig, Simulation};
    use mapreduce_workload::{JobId, JobSpecBuilder, Trace, WorkloadBuilder};

    fn bulk_trace() -> Trace {
        // Job 0: heavy (low priority), Job 1: light (high priority), equal weights.
        let heavy = JobSpecBuilder::new(JobId::new(0))
            .weight(1.0)
            .map_tasks_from_workloads(&[100.0, 100.0])
            .reduce_tasks_from_workloads(&[50.0])
            .build();
        let light = JobSpecBuilder::new(JobId::new(1))
            .weight(1.0)
            .map_tasks_from_workloads(&[10.0])
            .reduce_tasks_from_workloads(&[5.0])
            .build();
        Trace::new(vec![heavy, light]).unwrap()
    }

    #[test]
    fn small_jobs_finish_first_on_a_single_machine() {
        // With one machine the SRPT order determines everything: the light
        // job must run (and finish) before the heavy one starts.
        let trace = bulk_trace();
        let outcome = Simulation::new(SimConfig::new(1), &trace)
            .run(&mut OfflineSrpt::new(0.0))
            .unwrap();
        // Trace::new re-sorts and re-ids jobs: both arrive at 0 so order is
        // preserved (heavy = J0, light = J1).
        let light = outcome.record(JobId::new(1)).unwrap();
        let heavy = outcome.record(JobId::new(0)).unwrap();
        assert_eq!(light.completion, 15);
        assert_eq!(heavy.completion, 15 + 250);
        assert!(light.flowtime() < heavy.flowtime());
    }

    #[test]
    fn weights_override_size_ordering() {
        // Same sizes, but the heavy job now has enormous weight: it goes first.
        let heavy = JobSpecBuilder::new(JobId::new(0))
            .weight(100.0)
            .map_tasks_from_workloads(&[100.0, 100.0])
            .reduce_tasks_from_workloads(&[50.0])
            .build();
        let light = JobSpecBuilder::new(JobId::new(1))
            .weight(1.0)
            .map_tasks_from_workloads(&[10.0])
            .reduce_tasks_from_workloads(&[5.0])
            .build();
        let trace = Trace::new(vec![heavy, light]).unwrap();
        let outcome = Simulation::new(SimConfig::new(1), &trace)
            .run(&mut OfflineSrpt::new(0.0))
            .unwrap();
        let heavy = outcome.record(JobId::new(0)).unwrap();
        let light = outcome.record(JobId::new(1)).unwrap();
        assert!(heavy.completion < light.completion);
    }

    #[test]
    fn no_clones_are_ever_made() {
        let trace = WorkloadBuilder::new()
            .num_jobs(20)
            .map_tasks_per_job(2, 6)
            .reduce_tasks_per_job(1, 2)
            .build(5)
            .as_bulk_arrival();
        let outcome = Simulation::new(SimConfig::new(8), &trace)
            .run(&mut OfflineSrpt::new(2.0))
            .unwrap();
        let total_tasks: usize = outcome.records().iter().map(|r| r.num_tasks()).sum();
        assert_eq!(outcome.total_copies, total_tasks);
        assert!((outcome.mean_copies_per_task() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn completes_every_job_on_large_bulk_workload() {
        let trace = WorkloadBuilder::new()
            .num_jobs(60)
            .map_tasks_per_job(1, 10)
            .reduce_tasks_per_job(0, 3)
            .weights(&[1.0, 2.0, 5.0])
            .build(9)
            .as_bulk_arrival();
        let outcome = Simulation::new(SimConfig::new(16), &trace)
            .run(&mut OfflineSrpt::new(3.0))
            .unwrap();
        assert_eq!(outcome.records().len(), 60);
        assert!(outcome.records().iter().all(|r| r.completion > 0));
    }

    #[test]
    fn rejects_negative_r() {
        let result = std::panic::catch_unwind(|| OfflineSrpt::new(-1.0));
        assert!(result.is_err());
    }

    #[test]
    fn name_mentions_r() {
        assert!(OfflineSrpt::new(3.0).name().contains("r=3"));
        assert_eq!(OfflineSrpt::default().r(), 0.0);
    }
}
