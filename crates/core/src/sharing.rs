//! The ε-fraction machine-sharing rule of SRPTMS+C (Section V-A).
//!
//! At every slot the alive jobs with unscheduled tasks are ranked by
//! `w_i / U_i(l)`. The machines are then shared, in proportion to their
//! weights, among the *highest-priority* jobs whose weights make up an ε
//! fraction of the total alive weight `W(l)`:
//!
//! ```text
//!            ⎧ w_i·M / (ε·W(l))                        if W_i(l) − w_i ≥ (1−ε)·W(l)
//! g_i(l) =   ⎨ 0                                        if W_i(l) < (1−ε)·W(l)
//!            ⎩ (W_i(l) − (1−ε)·W(l))·M / (ε·W(l))       otherwise
//! ```
//!
//! where `W_i(l)` is the cumulative weight of all jobs with priority *lower
//! than or equal to* job `i` (the set `ψ^s_i(l)` of the paper, which includes
//! `J_i` itself). The fractional shares always sum to `M`; the engine needs
//! integers, so [`epsilon_fraction_shares`] also performs a deterministic
//! largest-remainder rounding that preserves the sum.
//!
//! Setting `ε = 1` recovers Hadoop's fair scheduler (all alive jobs share the
//! cluster in proportion to weight); `ε → 0` degenerates to pure SRPT (only
//! the single most urgent job runs).

use mapreduce_workload::JobId;

/// The machine share assigned to one job by the ε-fraction rule.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineShare {
    /// The job this share belongs to.
    pub job: JobId,
    /// The exact fractional share `g_i(l)`.
    pub fractional: f64,
    /// The integer share after largest-remainder rounding (sums to `M` across
    /// all jobs).
    pub machines: usize,
}

/// Computes the ε-fraction shares for jobs already sorted by *decreasing*
/// priority.
///
/// `jobs` is the priority-ordered list of `(job id, weight)` pairs of the
/// alive jobs with unscheduled tasks (`ψ^s(l)`); `total_machines` is `M`.
///
/// Returns one [`MachineShare`] per input job, in the same order.
///
/// # Panics
/// Panics if `epsilon` is not in `(0, 1]` or any weight is not positive.
pub fn epsilon_fraction_shares(
    jobs: &[(JobId, f64)],
    total_machines: usize,
    epsilon: f64,
) -> Vec<MachineShare> {
    let mut shares = Vec::with_capacity(jobs.len());
    epsilon_fraction_shares_into(jobs, total_machines, epsilon, &mut shares);
    shares
}

/// Like [`epsilon_fraction_shares`], but writes the result into a
/// caller-provided buffer (cleared first) so per-decision schedulers can
/// reuse the allocation across wakeups.
///
/// # Panics
/// Panics if `epsilon` is not in `(0, 1]` or any weight is not positive.
pub fn epsilon_fraction_shares_into(
    jobs: &[(JobId, f64)],
    total_machines: usize,
    epsilon: f64,
    shares: &mut Vec<MachineShare>,
) {
    let mut scratch = Vec::new();
    epsilon_fraction_shares_scratch(jobs, total_machines, epsilon, shares, &mut scratch);
}

/// Fully allocation-free variant of [`epsilon_fraction_shares_into`]: the
/// rounding's eligible-remainder working set also comes from a caller-owned
/// buffer, so a scheduler's decision path performs no heap allocation here
/// at all.
///
/// # Panics
/// Panics if `epsilon` is not in `(0, 1]` or any weight is not positive.
pub fn epsilon_fraction_shares_scratch(
    jobs: &[(JobId, f64)],
    total_machines: usize,
    epsilon: f64,
    shares: &mut Vec<MachineShare>,
    scratch: &mut Vec<(f64, usize)>,
) {
    assert!(
        epsilon > 0.0 && epsilon <= 1.0,
        "epsilon must be in (0, 1], got {epsilon}"
    );
    assert!(
        jobs.iter().all(|(_, w)| *w > 0.0),
        "job weights must be positive"
    );
    shares.clear();
    if jobs.is_empty() || total_machines == 0 {
        shares.extend(jobs.iter().map(|&(job, _)| MachineShare {
            job,
            fractional: 0.0,
            machines: 0,
        }));
        return;
    }

    let total_weight: f64 = jobs.iter().map(|(_, w)| w).sum();
    let m = total_machines as f64;
    let threshold = (1.0 - epsilon) * total_weight;

    // W_i(l): cumulative weight of jobs with priority <= job i (including i).
    // Jobs are sorted by decreasing priority, so this is the weight of the
    // suffix starting at i.
    let mut suffix_weight = total_weight;
    for &(job, weight) in jobs {
        let w_i = suffix_weight;
        let fractional = if w_i - weight >= threshold {
            weight * m / (epsilon * total_weight)
        } else if w_i < threshold {
            0.0
        } else {
            (w_i - threshold) * m / (epsilon * total_weight)
        };
        shares.push(MachineShare {
            job,
            fractional,
            machines: 0,
        });
        suffix_weight -= weight;
    }

    largest_remainder_round(shares, total_machines, scratch);
}

/// Prefix-truncated variant of [`epsilon_fraction_shares_scratch`] for
/// callers that know `W(l)` up front: only the jobs inside the ε-fraction
/// are pulled from the iterator and materialised.
///
/// The ε-fraction rule assigns **exactly zero** machines to every job whose
/// cumulative suffix weight `W_i(l)` falls below `(1−ε)·W(l)`, and the suffix
/// weights strictly decrease along the priority order — so once the walk
/// crosses the threshold, every remaining share is zero and the walk can
/// stop. `jobs` is consumed lazily and only up to that boundary: with the
/// engine maintaining `W(l)` incrementally, a decision touches
/// `O(prefix)` jobs instead of `O(alive)`.
///
/// The emitted prefix is **bit-identical** to the corresponding prefix of the
/// full walk (same fractional shares, same largest-remainder rounding, same
/// integer sum `M`): the truncated tail has zero fractional share, is never
/// eligible for a rounding top-up (eligibility requires a positive fractional
/// share), and contributes zero to the floored-share sum, so dropping it
/// changes nothing. Callers must treat jobs without an entry as zero-share.
///
/// `total_weight` must equal the sum of **all** candidate weights (the full
/// ranked list, not just the prefix), accumulated in ranked order —
/// `jobs.iter().map(|(_, w)| w).sum()` is what the full walk folds. When the
/// weights are integer-valued `f64`s below 2^53 (every committed workload:
/// Google-trace weights are `priority + 1`), any exact accumulation — in
/// particular the engine's incremental counter — produces the same bits; for
/// general fractional weights the caller must supply the fold-order sum to
/// keep the truncation bit-identical.
///
/// Unlike the full variant, `total_machines == 0` yields an *empty* share
/// list (the full walk emits one all-zero entry per job); no scheduler
/// distinguishes the two, as an absent entry already means "no machines".
///
/// # Panics
/// Panics if `epsilon` is not in `(0, 1]` or a *consumed* weight is not
/// positive (weights past the truncation boundary are never inspected).
pub fn epsilon_fraction_shares_prefix_into(
    jobs: impl IntoIterator<Item = (JobId, f64)>,
    total_weight: f64,
    total_machines: usize,
    epsilon: f64,
    shares: &mut Vec<MachineShare>,
    scratch: &mut Vec<(f64, usize)>,
) {
    assert!(
        epsilon > 0.0 && epsilon <= 1.0,
        "epsilon must be in (0, 1], got {epsilon}"
    );
    shares.clear();
    if total_machines == 0 {
        return;
    }

    let m = total_machines as f64;
    let threshold = (1.0 - epsilon) * total_weight;

    // Identical arithmetic to the full walk: W_i(l) is maintained by the
    // same repeated subtraction, so every emitted share matches bit for bit.
    let mut suffix_weight = total_weight;
    for (job, weight) in jobs {
        assert!(weight > 0.0, "job weights must be positive");
        let w_i = suffix_weight;
        if w_i < threshold {
            // Zero-share region: suffix weights only decrease from here.
            break;
        }
        let fractional = if w_i - weight >= threshold {
            weight * m / (epsilon * total_weight)
        } else {
            (w_i - threshold) * m / (epsilon * total_weight)
        };
        shares.push(MachineShare {
            job,
            fractional,
            machines: 0,
        });
        suffix_weight -= weight;
    }

    largest_remainder_round(shares, total_machines, scratch);
}

/// Rounds fractional shares to integers that sum to `total_machines`, by
/// flooring every share and then handing the remaining machines to the
/// largest fractional remainders (ties broken by position, i.e. by priority).
fn largest_remainder_round(
    shares: &mut [MachineShare],
    total_machines: usize,
    eligible: &mut Vec<(f64, usize)>,
) {
    let mut assigned = 0usize;
    // Only jobs that actually participate in the sharing (positive fractional
    // share) are eligible for a top-up; purely zero-share jobs stay at zero.
    eligible.clear();
    for (idx, share) in shares.iter_mut().enumerate() {
        let floor = share.fractional.floor() as usize;
        share.machines = floor;
        assigned += floor;
        let rem = share.fractional - floor as f64;
        if rem > 0.0 || share.fractional > 0.0 {
            eligible.push((rem, idx));
        }
    }
    let leftover = total_machines.saturating_sub(assigned);
    // Hand the leftover machines to the `leftover` largest remainders
    // (position ascending on ties). The recipients are the top-k of a total
    // order — each gets exactly +1, so their relative order is irrelevant —
    // which a selection finds in O(n) instead of a full O(n log n) sort per
    // scheduling decision. `total_cmp` keeps the order total even if a
    // remainder were ever NaN.
    let k = leftover.min(eligible.len());
    if k == 0 {
        return;
    }
    if k < eligible.len() {
        eligible.select_nth_unstable_by(k - 1, |a, b| {
            b.0.total_cmp(&a.0).then_with(|| a.1.cmp(&b.1))
        });
    }
    for &(_, idx) in &eligible[..k] {
        shares[idx].machines += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapreduce_support::proptest::prelude::*;

    fn ids(n: usize) -> Vec<JobId> {
        (0..n as u64).map(JobId::new).collect()
    }

    #[test]
    fn epsilon_one_is_weighted_fair_sharing() {
        let jobs: Vec<(JobId, f64)> = ids(3).into_iter().zip([1.0, 2.0, 1.0]).collect();
        let shares = epsilon_fraction_shares(&jobs, 8, 1.0);
        // With ε = 1 every job participates in proportion to weight: 2, 4, 2.
        let fractional: Vec<f64> = shares.iter().map(|s| s.fractional).collect();
        assert!((fractional[0] - 2.0).abs() < 1e-9);
        assert!((fractional[1] - 4.0).abs() < 1e-9);
        assert!((fractional[2] - 2.0).abs() < 1e-9);
        let total: usize = shares.iter().map(|s| s.machines).sum();
        assert_eq!(total, 8);
    }

    #[test]
    fn small_epsilon_concentrates_on_top_priority_job() {
        let jobs: Vec<(JobId, f64)> = ids(4).into_iter().zip([1.0, 1.0, 1.0, 1.0]).collect();
        let shares = epsilon_fraction_shares(&jobs, 100, 0.25);
        // ε share of weight = 1.0 = exactly the first job's weight: the top
        // job takes everything.
        assert!((shares[0].fractional - 100.0).abs() < 1e-9);
        for s in &shares[1..] {
            assert_eq!(s.fractional, 0.0);
            assert_eq!(s.machines, 0);
        }
        assert_eq!(shares[0].machines, 100);
    }

    #[test]
    fn partial_job_straddling_the_threshold_gets_partial_share() {
        // Three unit-weight jobs, ε = 0.5 → threshold = 1.5. The top job has
        // W_1 - w_1 = 2 ≥ 1.5 → full share; the second has W_2 = 2 ≥ 1.5 but
        // W_2 - w_2 = 1 < 1.5 → partial share (2 - 1.5) = 0.5 of a weight
        // unit; the third has W_3 = 1 < 1.5 → nothing.
        let jobs: Vec<(JobId, f64)> = ids(3).into_iter().zip([1.0, 1.0, 1.0]).collect();
        let shares = epsilon_fraction_shares(&jobs, 12, 0.5);
        assert!((shares[0].fractional - 8.0).abs() < 1e-9); // 1·12/(0.5·3)
        assert!((shares[1].fractional - 4.0).abs() < 1e-9); // 0.5·12/(0.5·3)
        assert_eq!(shares[2].fractional, 0.0);
        let total: usize = shares.iter().map(|s| s.machines).sum();
        assert_eq!(total, 12);
    }

    #[test]
    fn shares_sum_to_m_after_rounding() {
        let jobs: Vec<(JobId, f64)> = ids(7)
            .into_iter()
            .zip([3.0, 1.0, 2.5, 1.0, 4.0, 0.5, 2.0])
            .collect();
        for m in [1usize, 3, 10, 97] {
            for eps in [0.2, 0.5, 0.6, 0.9, 1.0] {
                let shares = epsilon_fraction_shares(&jobs, m, eps);
                let frac_sum: f64 = shares.iter().map(|s| s.fractional).sum();
                assert!(
                    (frac_sum - m as f64).abs() < 1e-6,
                    "fractional shares sum {frac_sum} != {m} at eps {eps}"
                );
                let int_sum: usize = shares.iter().map(|s| s.machines).sum();
                assert_eq!(int_sum, m, "integer shares must sum to M");
            }
        }
    }

    #[test]
    fn zero_machines_or_no_jobs() {
        let jobs: Vec<(JobId, f64)> = ids(2).into_iter().zip([1.0, 1.0]).collect();
        let shares = epsilon_fraction_shares(&jobs, 0, 0.5);
        assert!(shares.iter().all(|s| s.machines == 0));
        let empty = epsilon_fraction_shares(&[], 10, 0.5);
        assert!(empty.is_empty());
    }

    #[test]
    fn higher_priority_jobs_never_get_less_share_per_weight() {
        let jobs: Vec<(JobId, f64)> = ids(5).into_iter().zip([2.0, 1.0, 3.0, 1.0, 1.0]).collect();
        let shares = epsilon_fraction_shares(&jobs, 40, 0.6);
        let per_weight: Vec<f64> = shares
            .iter()
            .zip(&jobs)
            .map(|(s, (_, w))| s.fractional / w)
            .collect();
        for pair in per_weight.windows(2) {
            assert!(
                pair[0] + 1e-9 >= pair[1],
                "share per weight must be non-increasing"
            );
        }
    }

    #[test]
    #[should_panic(expected = "epsilon must be in")]
    fn zero_epsilon_rejected() {
        epsilon_fraction_shares(&[(JobId::new(0), 1.0)], 4, 0.0);
    }

    #[test]
    #[should_panic(expected = "weights must be positive")]
    fn non_positive_weight_rejected() {
        epsilon_fraction_shares(&[(JobId::new(0), 0.0)], 4, 0.5);
    }

    /// Runs the prefix walk with the fold-order total weight, the way the
    /// scheduler does.
    fn prefix_shares(jobs: &[(JobId, f64)], m: usize, eps: f64) -> Vec<MachineShare> {
        let total_weight: f64 = jobs.iter().map(|(_, w)| w).sum();
        let mut shares = Vec::new();
        let mut scratch = Vec::new();
        epsilon_fraction_shares_prefix_into(
            jobs.iter().copied(),
            total_weight,
            m,
            eps,
            &mut shares,
            &mut scratch,
        );
        shares
    }

    /// The prefix walk must be a bitwise-identical truncation of the full
    /// walk: same entries up to the truncation point, all-zero tail beyond
    /// it, same integer total.
    fn assert_prefix_matches_full(jobs: &[(JobId, f64)], m: usize, eps: f64) -> Result<(), String> {
        let full = epsilon_fraction_shares(jobs, m, eps);
        let prefix = prefix_shares(jobs, m, eps);
        prop_assert!(
            prefix.len() <= full.len(),
            "prefix ({}) longer than full ({})",
            prefix.len(),
            full.len()
        );
        for (i, (p, f)) in prefix.iter().zip(&full).enumerate() {
            prop_assert!(p.job == f.job, "job mismatch at {i}");
            prop_assert!(
                p.fractional.to_bits() == f.fractional.to_bits(),
                "fractional share not bit-identical at {i}: {} vs {}",
                p.fractional,
                f.fractional
            );
            prop_assert!(p.machines == f.machines, "integer share mismatch at {i}");
        }
        for (i, f) in full.iter().enumerate().skip(prefix.len()) {
            prop_assert!(
                f.fractional == 0.0 && f.machines == 0,
                "truncated entry {} is nonzero: fractional {}, machines {}",
                i,
                f.fractional,
                f.machines
            );
        }
        let sum: usize = prefix.iter().map(|s| s.machines).sum();
        prop_assert!(sum == m, "prefix shares sum {sum} != {m}");
        Ok(())
    }

    #[test]
    fn prefix_walk_truncates_zero_share_tail() {
        // ε = 0.25 over four unit weights: only the top job participates,
        // so the prefix stops after one entry (plus at most one straddle).
        let jobs: Vec<(JobId, f64)> = ids(4).into_iter().zip([1.0, 1.0, 1.0, 1.0]).collect();
        let prefix = prefix_shares(&jobs, 100, 0.25);
        assert!(prefix.len() <= 2, "prefix kept {} entries", prefix.len());
        assert_eq!(prefix[0].machines, 100);
        assert_prefix_matches_full(&jobs, 100, 0.25).unwrap();
    }

    #[test]
    fn prefix_walk_with_zero_machines_is_empty() {
        let jobs: Vec<(JobId, f64)> = ids(3).into_iter().zip([1.0, 2.0, 1.0]).collect();
        assert!(prefix_shares(&jobs, 0, 0.5).is_empty());
        assert!(prefix_shares(&[], 10, 0.5).is_empty());
    }

    #[test]
    fn prefix_walk_epsilon_one_keeps_every_job() {
        let jobs: Vec<(JobId, f64)> = ids(5).into_iter().zip([3.0, 1.0, 2.0, 1.0, 5.0]).collect();
        let prefix = prefix_shares(&jobs, 16, 1.0);
        assert_eq!(prefix.len(), jobs.len());
        assert_prefix_matches_full(&jobs, 16, 1.0).unwrap();
    }

    proptest! {
        /// Satellite pin: the prefix-truncated walk is interchangeable with
        /// the full walk over random ranked lists and ε ∈ (0, 1].
        #[test]
        fn prop_prefix_walk_matches_full_walk(
            weights in proptest::collection::vec(0.1f64..20.0, 1..40),
            m in 0usize..200,
            eps in 0.05f64..1.0,
        ) {
            let jobs: Vec<(JobId, f64)> = weights
                .iter()
                .enumerate()
                .map(|(i, &w)| (JobId::new(i as u64), w))
                .collect();
            if m == 0 {
                prop_assert!(prefix_shares(&jobs, 0, eps).is_empty());
            } else {
                // ε = 1.0 is the boundary case the unit test covers; sample
                // the open range here and the exact endpoint separately.
                assert_prefix_matches_full(&jobs, m, eps)?;
                assert_prefix_matches_full(&jobs, m, 1.0)?;
            }
        }

        /// Integer-valued weights are the committed-workload regime where the
        /// incremental W(l) counter is exact; pin it explicitly.
        #[test]
        fn prop_prefix_walk_matches_full_walk_integer_weights(
            weights in proptest::collection::vec(1u32..50, 1..40),
            m in 1usize..200,
            eps in 0.05f64..1.0,
        ) {
            let jobs: Vec<(JobId, f64)> = weights
                .iter()
                .enumerate()
                .map(|(i, &w)| (JobId::new(i as u64), f64::from(w)))
                .collect();
            assert_prefix_matches_full(&jobs, m, eps)?;
        }
    }

    proptest! {
        #[test]
        fn prop_shares_always_sum_to_m(
            weights in proptest::collection::vec(0.1f64..20.0, 1..30),
            m in 1usize..200,
            eps in 0.05f64..1.0,
        ) {
            let jobs: Vec<(JobId, f64)> = weights
                .iter()
                .enumerate()
                .map(|(i, &w)| (JobId::new(i as u64), w))
                .collect();
            let shares = epsilon_fraction_shares(&jobs, m, eps);
            let int_sum: usize = shares.iter().map(|s| s.machines).sum();
            prop_assert_eq!(int_sum, m);
            let frac_sum: f64 = shares.iter().map(|s| s.fractional).sum();
            prop_assert!((frac_sum - m as f64).abs() < 1e-6);
            // No share is negative and no single share exceeds M.
            for s in &shares {
                prop_assert!(s.fractional >= -1e-9);
                prop_assert!(s.machines <= m);
            }
        }
    }
}
