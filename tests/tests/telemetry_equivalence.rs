//! Observer-attachment equivalence: the telemetry seam must be invisible.
//!
//! [`mapreduce_sim::SimObserver`] is a read-only tap on the engine — so a
//! run with the full observer stack attached (counter/histogram fold plus
//! Chrome-trace recorder) must produce a **bit-identical**
//! [`SimOutcome`] to the same run without it, across the whole golden
//! scheduler suite, with and without fault plans, and in pipelined mode.
//! These proptests pin that, plus the consistency laws tying the folded
//! registry back to the outcome's own conservation counters, plus the
//! self-validation of the exported trace against the registry.

use mapreduce_baselines::{FairScheduler, Fifo, Late, Mantri, Restart, Sca};
use mapreduce_metrics::telemetry::names;
use mapreduce_metrics::{validate_trace, MetricsRegistry, SimTelemetry, TraceRecorder};
use mapreduce_sched::SrptMsC;
use mapreduce_sim::{
    FaultClass, FaultPlan, Scheduler, SimConfig, SimOutcome, Simulation, StragglerModel,
};
use mapreduce_support::proptest::prelude::*;
use mapreduce_workload::{ArrivalProcess, DurationDistribution, Trace, WorkloadBuilder};

/// A fresh instance of every scheduler in the golden suite.
fn golden_suite() -> Vec<Box<dyn Scheduler>> {
    vec![
        Box::new(SrptMsC::new(0.6, 3.0)),
        Box::new(Mantri::new()),
        Box::new(Late::new()),
        Box::new(Restart::new()),
        Box::new(FairScheduler::new()),
        Box::new(Fifo::new()),
        Box::new(Sca::new()),
    ]
}

/// A workload heavy-tailed enough to exercise cloning, cancellation and
/// both phases, small enough for suite × cases proptest budgets.
fn random_trace(jobs: usize, seed: u64, map_mean: f64) -> Trace {
    WorkloadBuilder::new()
        .num_jobs(jobs)
        .arrivals(ArrivalProcess::Poisson {
            mean_interarrival: 15.0,
        })
        .map_tasks_per_job(1, 5)
        .reduce_tasks_per_job(0, 2)
        .map_duration(DurationDistribution::lognormal_from_moments(map_mean, map_mean).unwrap())
        .reduce_duration(
            DurationDistribution::lognormal_from_moments(map_mean * 1.5, map_mean).unwrap(),
        )
        .weights(&[1.0, 2.0, 5.0])
        .build(seed)
}

/// Stragglers keep detection-based schedulers speculating, so the
/// cancellation events actually fire.
fn config(machines: usize, seed: u64, plan: Option<FaultPlan>) -> SimConfig {
    let mut config = SimConfig::new(machines)
        .with_seed(seed)
        .with_straggler_model(StragglerModel::MachineSlowdown {
            probability: 0.15,
            factor: 5.0,
        });
    if let Some(plan) = plan {
        config = config.with_fault_plan(plan);
    }
    config
}

fn run_bare(scheduler: &mut dyn Scheduler, trace: &Trace, config: SimConfig) -> SimOutcome {
    Simulation::new(config, trace)
        .run(scheduler)
        .expect("bare run must complete")
}

fn run_observed(
    scheduler: &mut dyn Scheduler,
    trace: &Trace,
    config: SimConfig,
) -> (SimOutcome, MetricsRegistry, TraceRecorder) {
    let mut telemetry = SimTelemetry::new();
    let mut recorder = TraceRecorder::new(100_000);
    let outcome = Simulation::new(config, trace)
        .run_with_observer(scheduler, &mut (&mut telemetry, &mut recorder))
        .expect("observed run must complete");
    (outcome, telemetry.into_registry(), recorder)
}

/// The full invariant bundle for one (scheduler, trace, config) cell.
fn assert_observer_invisible(
    label: &str,
    scheduler_pair: (&mut dyn Scheduler, &mut dyn Scheduler),
    trace: &Trace,
    cfg: SimConfig,
) -> Result<(), String> {
    let (bare_scheduler, observed_scheduler) = scheduler_pair;
    let bare = run_bare(bare_scheduler, trace, cfg.clone());
    let (observed, registry, recorder) = run_observed(observed_scheduler, trace, cfg);

    // Bit-identity of the outcome, including the deterministic halves of the
    // telemetry block (the stage_*_ns wall clocks are excluded from
    // equality by design).
    prop_assert!(
        bare == observed,
        "{label}: attaching observers changed the outcome"
    );
    prop_assert_eq!(
        bare.telemetry.decision_instants,
        observed.telemetry.decision_instants
    );
    prop_assert_eq!(
        bare.telemetry.ranked_prefix_len_max,
        observed.telemetry.ranked_prefix_len_max
    );

    // Conservation laws tying the folded registry to the outcome.
    prop_assert_eq!(
        registry.counter(names::JOBS_COMPLETED) as usize,
        observed.records().len()
    );
    prop_assert_eq!(
        registry.counter(names::COPIES_LAUNCHED) as usize,
        observed.total_copies
    );
    prop_assert_eq!(
        registry.counter(names::CANCELLED_FAULT),
        observed.copies_killed_by_fault
    );
    // Every launched copy ends exactly once: finished, or cancelled for one
    // of the three reasons.
    prop_assert_eq!(
        registry.counter(names::COPIES_LAUNCHED),
        registry.counter(names::COPIES_FINISHED)
            + registry.counter(names::CANCELLED_SIBLING)
            + registry.counter(names::CANCELLED_SCHEDULER)
            + registry.counter(names::CANCELLED_FAULT)
    );
    // The observer sees every decision instant except the final drain batch,
    // which completes the run before the scheduler is consulted.
    prop_assert_eq!(
        registry.counter(names::DECISION_INSTANTS),
        observed.telemetry.decision_instants - 1
    );

    // The exported trace self-validates against the registry.
    let text = recorder.to_json().to_compact_string();
    if let Err(err) = validate_trace(&text, &registry) {
        return Err(format!("{label}: trace failed validation: {err}"));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Fault-free runs: the whole golden suite, observers invisible.
    #[test]
    fn observers_are_invisible_across_golden_suite(
        jobs in 5usize..20,
        machines in 4usize..32,
        seed in 0u64..1000,
        map_mean in 20.0f64..120.0,
    ) {
        let trace = random_trace(jobs, seed, map_mean);
        for (mut bare, mut observed) in golden_suite().into_iter().zip(golden_suite()) {
            let label = format!("plain/{}", bare.name());
            assert_observer_invisible(
                &label,
                (bare.as_mut(), observed.as_mut()),
                &trace,
                config(machines, seed, None),
            )?;
        }
    }

    /// Crash/recovery dynamics: fault events (MachineDown/Up, unlaunches,
    /// fault kills) flow through the observers without disturbing the run.
    #[test]
    fn observers_are_invisible_under_fault_plans(
        jobs in 5usize..15,
        machines in 6usize..20,
        seed in 0u64..500,
        crash_fraction in 0.3f64..1.0,
        mean_up in 300.0f64..3_000.0,
    ) {
        let trace = random_trace(jobs, seed, 40.0);
        let crashed = ((machines as f64 * crash_fraction) as usize).max(1);
        let plan = FaultPlan::new(vec![FaultClass::crashes(
            crashed,
            mean_up,
            (mean_up * 0.2).max(1.0),
        )]);
        for (mut bare, mut observed) in golden_suite().into_iter().zip(golden_suite()) {
            let label = format!("faulty/{}", bare.name());
            assert_observer_invisible(
                &label,
                (bare.as_mut(), observed.as_mut()),
                &trace,
                config(machines, seed, Some(plan.clone())),
            )?;
        }
    }

    /// Pipelined mode: the producer/consumer engine with observers attached
    /// still matches the bare serial oracle bit for bit.
    #[test]
    fn observers_are_invisible_in_pipelined_mode(
        jobs in 5usize..20,
        machines in 4usize..24,
        seed in 0u64..500,
    ) {
        let trace = random_trace(jobs, seed, 40.0);
        let serial = run_bare(
            &mut SrptMsC::new(0.6, 3.0),
            &trace,
            config(machines, seed, None),
        );
        let (piped, registry, _recorder) = run_observed(
            &mut SrptMsC::new(0.6, 3.0),
            &trace,
            config(machines, seed, None).with_pipeline(true),
        );
        prop_assert!(
            serial == piped,
            "pipelined observed run diverged from the serial bare oracle"
        );
        prop_assert_eq!(
            registry.counter(names::JOBS_COMPLETED) as usize,
            piped.records().len()
        );
    }
}
