//! Quantile-sketch laws: shard-mergeability and the documented error bound.
//!
//! The streaming flowtime sketch ([`mapreduce_metrics::QuantileSketch`])
//! underwrites every "CDF without per-job records" path in the repo — the
//! server's `cdf` sweeps, the `metrics` exposition, the sketched Fig. 4/5
//! series. These proptests pin the two contracts everything downstream
//! leans on:
//!
//! 1. **Shard discipline** — folding a value set shard-by-shard and merging,
//!    under any split and any merge tree, is bit-identical to folding the
//!    whole set into one sketch (the same law `StreamingFlowtime` and
//!    `MetricsRegistry` obey), and the JSON form roundtrips losslessly.
//! 2. **Error bound** — against the exact [`Ecdf`] over the same samples,
//!    every sketch quantile is within `RELATIVE_ERROR` (1/64) of the true
//!    rank-selected sample, and every CDF fraction is bracketed by the exact
//!    fraction at `x` and at `x · (1 + RELATIVE_ERROR)` — a bounded
//!    rightward nudge of the evaluation point, never a miscounted sample.
//!    Pinned both on adversarial synthetic values spanning the full `u64`
//!    dynamic range and on real flowtimes from the golden scheduler suite,
//!    including the sketches folded live by [`SimTelemetry`] during an
//!    observed run.

use mapreduce_baselines::{FairScheduler, Fifo, Late, Mantri, Restart, Sca};
use mapreduce_metrics::{Ecdf, QuantileSketch, SimTelemetry};
use mapreduce_sched::SrptMsC;
use mapreduce_sim::{Scheduler, SimConfig, Simulation, StragglerModel};
use mapreduce_support::json::{FromJson, ToJson};
use mapreduce_support::proptest::prelude::*;
use mapreduce_workload::{ArrivalProcess, DurationDistribution, Trace, WorkloadBuilder};

/// A fresh instance of every scheduler in the golden suite.
fn golden_suite() -> Vec<Box<dyn Scheduler>> {
    vec![
        Box::new(SrptMsC::new(0.6, 3.0)),
        Box::new(Mantri::new()),
        Box::new(Late::new()),
        Box::new(Restart::new()),
        Box::new(FairScheduler::new()),
        Box::new(Fifo::new()),
        Box::new(Sca::new()),
    ]
}

/// Synthetic values spanning the sketch's whole dynamic range: an LCG
/// stream where each draw is right-shifted by a pseudo-random amount, so
/// one vector mixes sub-64 exact values, mid-range buckets, and the top
/// `u64` octaves — the regions where bucket geometry could break.
fn wide_values(len: usize, seed: u64) -> Vec<u64> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let shift = (state >> 58) as u32; // 0..=63
            state >> shift
        })
        .collect()
}

/// Folds a slice into a fresh sketch.
fn fold(values: &[u64]) -> QuantileSketch {
    let mut sketch = QuantileSketch::new();
    for &v in values {
        sketch.record(v);
    }
    sketch
}

/// Asserts the documented quantile and fraction bounds of `sketch` against
/// the exact ECDF over the same samples (given as `f64` for the Ecdf side).
fn assert_error_bound(label: &str, sketch: &QuantileSketch, exact: &Ecdf) -> Result<(), String> {
    prop_assert_eq!(sketch.count() as usize, exact.len());
    for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0] {
        let approx = sketch.quantile(q).expect("non-empty sketch") as f64;
        let true_value = exact.quantile(q).expect("non-empty ecdf");
        // Same rank rule on both sides, so the reported value and the true
        // rank-th sample share a bucket: off by less than one bucket width,
        // i.e. within RELATIVE_ERROR of the true value.
        prop_assert!(
            (approx - true_value).abs() <= true_value * QuantileSketch::RELATIVE_ERROR + 1e-9,
            "{}: q={} sketch {} vs exact {}",
            label,
            q,
            approx,
            true_value
        );
    }
    // Fractions: the sketch counts whole buckets, which equals the exact
    // fraction at a nudged evaluation point x' ∈ [x, x·(1+RELATIVE_ERROR)).
    for &x in exact.values().iter().step_by((exact.len() / 8).max(1)) {
        let approx = sketch.fraction_at_or_below(x as u64);
        let lo = exact.fraction_at_or_below(x);
        let hi = exact.fraction_at_or_below(x * (1.0 + QuantileSketch::RELATIVE_ERROR) + 1e-9);
        prop_assert!(
            approx >= lo - 1e-12 && approx <= hi + 1e-12,
            "{}: fraction at {} = {} outside [{}, {}]",
            label,
            x,
            approx,
            lo,
            hi
        );
    }
    Ok(())
}

/// A small heavy-tailed workload, same shape as the telemetry equivalence
/// suite uses.
fn random_trace(jobs: usize, seed: u64, map_mean: f64) -> Trace {
    WorkloadBuilder::new()
        .num_jobs(jobs)
        .arrivals(ArrivalProcess::Poisson {
            mean_interarrival: 15.0,
        })
        .map_tasks_per_job(1, 5)
        .reduce_tasks_per_job(0, 2)
        .map_duration(DurationDistribution::lognormal_from_moments(map_mean, map_mean).unwrap())
        .reduce_duration(
            DurationDistribution::lognormal_from_moments(map_mean * 1.5, map_mean).unwrap(),
        )
        .weights(&[1.0, 2.0, 5.0])
        .build(seed)
}

/// Stragglers keep detection-based schedulers speculating.
fn config(machines: usize, seed: u64) -> SimConfig {
    SimConfig::new(machines)
        .with_seed(seed)
        .with_straggler_model(StragglerModel::MachineSlowdown {
            probability: 0.15,
            factor: 5.0,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Shard discipline on adversarial synthetic values: any three-way
    /// split, merged under either association, is bit-identical to the
    /// single fold — and the JSON form roundtrips.
    #[test]
    fn merge_is_associative_and_matches_the_single_fold(
        len in 1usize..400,
        seed in 0u64..u64::MAX,
        cut_a in 0usize..1000,
        cut_b in 0usize..1000,
    ) {
        let values = wide_values(len, seed);
        let i = cut_a % (len + 1);
        let j = i + cut_b % (len - i + 1);
        let (a, b, c) = (fold(&values[..i]), fold(&values[i..j]), fold(&values[j..]));

        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        let whole = fold(&values);

        prop_assert_eq!(&left, &right);
        prop_assert_eq!(&left, &whole);
        let reparsed = QuantileSketch::from_json(&whole.to_json())
            .expect("sketch JSON roundtrip");
        prop_assert_eq!(&reparsed, &whole);
    }

    /// The documented error bound holds across the full dynamic range of
    /// synthetic values.
    #[test]
    fn sketch_tracks_the_exact_ecdf_on_synthetic_values(
        len in 1usize..300,
        seed in 0u64..u64::MAX,
    ) {
        let values = wide_values(len, seed);
        let sketch = fold(&values);
        // Values above 2^53 lose precision as f64; clamp the Ecdf side to
        // the same f64 the comparison maths runs in.
        let exact = Ecdf::from_values(&values.iter().map(|&v| v as f64).collect::<Vec<_>>());
        assert_error_bound("synthetic", &sketch, &exact)?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Real flowtimes: for every scheduler in the golden suite, the sketch
    /// folded from the outcome's records stays within the documented bound
    /// of the exact ECDF over those records.
    #[test]
    fn sketch_tracks_the_exact_ecdf_across_the_golden_suite(
        jobs in 5usize..20,
        machines in 4usize..32,
        seed in 0u64..1000,
        map_mean in 20.0f64..120.0,
    ) {
        let trace = random_trace(jobs, seed, map_mean);
        for mut scheduler in golden_suite() {
            let outcome = Simulation::new(config(machines, seed), &trace)
                .run(scheduler.as_mut())
                .expect("run must complete");
            let flowtimes: Vec<u64> = outcome.records().iter().map(|r| r.flowtime()).collect();
            let sketch = fold(&flowtimes);
            let exact = Ecdf::from_outcome(&outcome);
            assert_error_bound(scheduler.name(), &sketch, &exact)?;
        }
    }

    /// The sketches [`SimTelemetry`] folds live during an observed run are
    /// exactly the sketches of the outcome's records: total count and
    /// SMALL/BIG window partition match, the JSON payload roundtrips, and
    /// the `all` sketch obeys the error bound against the exact ECDF.
    #[test]
    fn telemetry_sketches_match_the_outcome_records(
        jobs in 5usize..20,
        machines in 4usize..24,
        seed in 0u64..1000,
    ) {
        let trace = random_trace(jobs, seed, 60.0);
        let mut telemetry = SimTelemetry::new();
        let outcome = Simulation::new(config(machines, seed), &trace)
            .run_with_observer(&mut SrptMsC::new(0.6, 3.0), &mut telemetry)
            .expect("observed run must complete");
        let sketches = telemetry.sketches();

        let flowtimes: Vec<u64> = outcome.records().iter().map(|r| r.flowtime()).collect();
        prop_assert_eq!(sketches.all.count() as usize, flowtimes.len());
        prop_assert_eq!(
            sketches.small.count(),
            flowtimes.iter().filter(|&&f| f < 300).count() as u64
        );
        prop_assert_eq!(
            sketches.big.count(),
            flowtimes.iter().filter(|&&f| (300..4000).contains(&f)).count() as u64
        );
        prop_assert_eq!(&sketches.all, &fold(&flowtimes));

        let reparsed = mapreduce_metrics::FlowtimeSketches::from_json(&sketches.to_json())
            .expect("sketches JSON roundtrip");
        prop_assert_eq!(&reparsed, sketches);

        assert_error_bound("telemetry", &sketches.all, &Ecdf::from_outcome(&outcome))?;
    }
}
