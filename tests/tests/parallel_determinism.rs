//! Acceptance check for the parallel experiment runner: multi-seed scenario
//! runs must produce bit-identical results regardless of the worker thread
//! count (`RAYON_NUM_THREADS=1` vs default parallelism).
//!
//! Everything lives in ONE test function: `std::env::set_var` is not safe to
//! call while another thread may be reading the environment (the test
//! harness runs sibling `#[test]`s concurrently), so the env-var
//! manipulation must not coexist with other tests in this binary.

use mapreduce_experiments::{run_scheduler, run_scheduler_averaged, Scenario, SchedulerKind};
use mapreduce_metrics::FlowtimeSummary;

#[test]
fn multi_seed_runs_are_bit_identical_across_thread_counts() {
    let scenario = Scenario::scaled(80, 4);
    let kind = SchedulerKind::paper_default();

    std::env::remove_var("RAYON_NUM_THREADS");
    let parallel = run_scheduler_averaged(kind, &scenario);

    std::env::set_var("RAYON_NUM_THREADS", "1");
    let serial = run_scheduler_averaged(kind, &scenario);
    std::env::remove_var("RAYON_NUM_THREADS");

    assert_eq!(parallel.len(), 4);
    assert_eq!(parallel, serial, "outcomes differ across thread counts");

    // The averaged figure rows are therefore identical too, field by field.
    let summarise = |outcomes: &[mapreduce_sim::SimOutcome]| -> Vec<FlowtimeSummary> {
        outcomes.iter().map(FlowtimeSummary::from_outcome).collect()
    };
    assert_eq!(summarise(&parallel), summarise(&serial));

    // Seed order is preserved in the results: each entry must match a solo
    // re-run of its seed, independent of which worker finished first.
    let order_scenario = Scenario::scaled(40, 3);
    let outcomes = run_scheduler_averaged(SchedulerKind::Fifo, &order_scenario);
    assert_eq!(outcomes.len(), order_scenario.seeds.len());
    for (idx, &seed) in order_scenario.seeds.iter().enumerate() {
        let trace = order_scenario.trace(seed);
        let single = run_scheduler(SchedulerKind::Fifo, &trace, order_scenario.machines, seed);
        assert_eq!(outcomes[idx], single, "seed {seed} out of order");
    }
}
