//! Golden-equivalence tests for the incremental-state optimization.
//!
//! Every optimized scheduler (SRPTMS+C, Mantri, LATE, Fair, FIFO, SCA) must
//! produce a **bit-identical** [`SimOutcome`] to its frozen pre-optimization
//! reference implementation (`mapreduce_sched::reference`,
//! `mapreduce_baselines::reference`) on randomized multi-seed workloads. The
//! references re-scan and re-sort everything per decision and touch none of
//! the engine's incremental indices, so any divergence in the free-lists, the
//! priority/arrival orders, the running-by-finish index or the
//! completed-duration aggregates shows up as an outcome mismatch.

use mapreduce_baselines::{
    FairScheduler, Fifo, Late, Mantri, ReferenceFair, ReferenceFifo, ReferenceLate,
    ReferenceMantri, ReferenceRestart, ReferenceSca, Restart, Sca,
};
use mapreduce_sched::{ReferenceSrptMsC, SrptMsC};
use mapreduce_sim::{Scheduler, SimConfig, SimOutcome, Simulation, StragglerModel};
use mapreduce_support::proptest::prelude::*;
use mapreduce_workload::{ArrivalProcess, DurationDistribution, Trace, WorkloadBuilder};

/// A randomized workload with both phases, heavy-tailed durations and mixed
/// weights, so every code path (cloning, backfill, detection, precedence) is
/// exercised.
fn random_trace(jobs: usize, seed: u64, mean_interarrival: f64, map_mean: f64) -> Trace {
    WorkloadBuilder::new()
        .num_jobs(jobs)
        .arrivals(ArrivalProcess::Poisson { mean_interarrival })
        .map_tasks_per_job(1, 6)
        .reduce_tasks_per_job(0, 2)
        .map_duration(DurationDistribution::lognormal_from_moments(map_mean, map_mean).unwrap())
        .reduce_duration(
            DurationDistribution::lognormal_from_moments(map_mean * 1.5, map_mean).unwrap(),
        )
        .weights(&[1.0, 2.0, 5.0, 12.0])
        .build(seed)
}

fn run(scheduler: &mut dyn Scheduler, trace: &Trace, machines: usize, seed: u64) -> SimOutcome {
    // Machine stragglers make detection-based schedulers actually speculate.
    let config = SimConfig::new(machines)
        .with_seed(seed)
        .with_straggler_model(StragglerModel::MachineSlowdown {
            probability: 0.15,
            factor: 5.0,
        });
    Simulation::new(config, trace)
        .run(scheduler)
        .expect("simulation must complete")
}

/// Runs the optimized and reference schedulers over the same trace and
/// asserts full outcome equality.
fn assert_equivalent(
    label: &str,
    optimized: &mut dyn Scheduler,
    reference: &mut dyn Scheduler,
    trace: &Trace,
    machines: usize,
    seed: u64,
) -> Result<(), String> {
    let a = run(optimized, trace, machines, seed);
    let b = run(reference, trace, machines, seed);
    prop_assert_eq!(&a.scheduler, &b.scheduler);
    prop_assert!(
        a == b,
        "{label}: optimized and reference outcomes diverge (machines {machines}, seed {seed}): \
         mean flowtime {} vs {}, copies {} vs {}, makespan {} vs {}",
        a.mean_flowtime(),
        b.mean_flowtime(),
        a.total_copies,
        b.total_copies,
        a.makespan,
        b.makespan
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn golden_srptmsc_matches_reference(
        jobs in 5usize..35,
        machines in 4usize..64,
        seed in 0u64..1000,
        interarrival in 1.0f64..60.0,
        map_mean in 10.0f64..200.0,
        epsilon in 0.2f64..1.0,
    ) {
        let trace = random_trace(jobs, seed, interarrival, map_mean);
        assert_equivalent(
            "srptms+c",
            &mut SrptMsC::new(epsilon, 3.0),
            &mut ReferenceSrptMsC::new(epsilon, 3.0),
            &trace,
            machines,
            seed,
        )?;
    }

    #[test]
    fn golden_mantri_matches_reference(
        jobs in 5usize..30,
        machines in 4usize..48,
        seed in 0u64..1000,
        map_mean in 20.0f64..200.0,
    ) {
        let trace = random_trace(jobs, seed, 25.0, map_mean);
        assert_equivalent(
            "mantri",
            &mut Mantri::new(),
            &mut ReferenceMantri::new(),
            &trace,
            machines,
            seed,
        )?;
    }

    #[test]
    fn golden_late_matches_reference(
        jobs in 5usize..30,
        machines in 4usize..48,
        seed in 0u64..1000,
        map_mean in 20.0f64..200.0,
    ) {
        let trace = random_trace(jobs, seed, 25.0, map_mean);
        assert_equivalent(
            "late",
            &mut Late::new(),
            &mut ReferenceLate::new(),
            &trace,
            machines,
            seed,
        )?;
    }

    #[test]
    fn golden_restart_matches_reference(
        jobs in 5usize..30,
        machines in 4usize..48,
        seed in 0u64..1000,
        map_mean in 20.0f64..200.0,
    ) {
        // The cancellation-heavy path: every detected straggler is killed
        // (CancelCopies, exercising event retraction and the running-finish
        // re-keying) and relaunched. The heavy-tailed workload plus machine
        // stragglers guarantees restarts actually fire.
        let trace = random_trace(jobs, seed, 25.0, map_mean);
        assert_equivalent(
            "restart",
            &mut Restart::new(),
            &mut ReferenceRestart::new(),
            &trace,
            machines,
            seed,
        )?;
    }

    #[test]
    fn golden_fair_fifo_sca_match_references(
        jobs in 5usize..30,
        machines in 4usize..48,
        seed in 0u64..1000,
    ) {
        let trace = random_trace(jobs, seed, 20.0, 60.0);
        assert_equivalent(
            "fair",
            &mut FairScheduler::new(),
            &mut ReferenceFair::new(),
            &trace,
            machines,
            seed,
        )?;
        assert_equivalent("fifo", &mut Fifo::new(), &mut ReferenceFifo::new(), &trace, machines, seed)?;
        assert_equivalent("sca", &mut Sca::new(), &mut ReferenceSca::new(), &trace, machines, seed)?;
    }
}

/// The committed benchmark scenario itself must also be equivalence-clean:
/// this is the exact workload whose timings land in `BENCH_engine.json`.
#[test]
fn golden_bench_scenario_matches_reference() {
    let scenario = mapreduce_experiments::Scenario::scaled(120, 1);
    let seed = scenario.seeds[0];
    let trace = scenario.trace(seed);
    let machines = scenario.machines;

    let cases: Vec<(Box<dyn Scheduler>, Box<dyn Scheduler>)> = vec![
        (
            Box::new(SrptMsC::new(0.6, 3.0)),
            Box::new(ReferenceSrptMsC::new(0.6, 3.0)),
        ),
        (Box::new(Mantri::new()), Box::new(ReferenceMantri::new())),
        (Box::new(Late::new()), Box::new(ReferenceLate::new())),
        (Box::new(Restart::new()), Box::new(ReferenceRestart::new())),
        (
            Box::new(FairScheduler::new()),
            Box::new(ReferenceFair::new()),
        ),
        (Box::new(Fifo::new()), Box::new(ReferenceFifo::new())),
        (Box::new(Sca::new()), Box::new(ReferenceSca::new())),
    ];
    for (mut optimized, mut reference) in cases {
        let config = SimConfig::new(machines).with_seed(seed);
        let a = Simulation::new(config.clone(), &trace)
            .run(optimized.as_mut())
            .unwrap();
        let b = Simulation::new(config, &trace)
            .run(reference.as_mut())
            .unwrap();
        assert_eq!(a, b, "{} diverges on the bench scenario", a.scheduler);
    }
}
