//! Side-by-side equivalence of the calendar event queue and the frozen
//! binary-heap reference.
//!
//! The engine's trajectory is fully determined by the sequence of delivered
//! events and the sequence of decision instants. These properties drive the
//! new [`EventQueue`] (calendar/bucket) and the frozen [`HeapEventQueue`]
//! over identical randomized streams — arrivals and finishes, same-slot
//! ties, far-future overflow slots, and retractions of queued finishes — and
//! assert that
//!
//! * both queues report the **same next instant** at every step (the
//!   calendar's tombstoned instants stand in for the heap's lazily deleted
//!   stale entries), and
//! * both deliver the **same live events in the same order**, where the heap
//!   side models the engine's historical pop-time staleness check by
//!   filtering retracted copies after popping.

use mapreduce_sim::{CopyId, Event, EventQueue, HeapEventQueue};
use mapreduce_support::proptest::prelude::*;
use mapreduce_support::rng::{Rng, SimRng};
use mapreduce_workload::{JobId, Phase, TaskId};
use std::collections::HashSet;

fn finish_event(at: u64, copy: u64) -> Event {
    // These synthetic streams never recycle copy slots, so the allocation
    // sequence equals the copy id — exactly the engine's pre-free-list
    // behaviour the heap oracle was frozen against.
    Event::CopyFinish {
        at,
        copy: CopyId(copy),
        task: TaskId::new(JobId::new(copy % 7), Phase::Map, (copy % 13) as u32),
        seq: copy,
    }
}

/// Drives both queues with one randomized stream and checks peek and pop
/// parity throughout. Returns an error string on divergence (proptest style).
fn drive(seed: u64, ops: usize, ring_bits: u8) -> Result<(), String> {
    let mut rng = SimRng::seed_from_u64(seed);
    let mut calendar = EventQueue::with_ring_bits(ring_bits);
    let mut heap = HeapEventQueue::new();

    let mut now: u64 = 0;
    let mut next_copy: u64 = 0;
    let mut next_job: usize = 0;
    // Queued (slot, copy) finish entries that are still retractable.
    let mut retractable: Vec<(u64, u64)> = Vec::new();
    let mut retracted: HashSet<u64> = HashSet::new();
    let mut drained = Vec::new();

    for _ in 0..ops {
        match rng.gen_range(0u32..10) {
            // Push a burst of events; small offsets force same-slot ties,
            // huge offsets land in the calendar's overflow map.
            0..=5 => {
                let burst = rng.gen_range(1usize..4);
                for _ in 0..burst {
                    let offset = match rng.gen_range(0u32..10) {
                        0..=5 => rng.gen_range(1u64..8),
                        6..=8 => rng.gen_range(8u64..5_000),
                        _ => rng.gen_range(5_000u64..2_000_000),
                    };
                    let slot = now + offset;
                    if rng.gen_range(0u32..5) == 0 {
                        let event = Event::JobArrival {
                            at: slot,
                            job_index: next_job,
                        };
                        next_job += 1;
                        calendar.push(event);
                        heap.push(event);
                    } else {
                        let event = finish_event(slot, next_copy);
                        retractable.push((slot, next_copy));
                        next_copy += 1;
                        calendar.push(event);
                        heap.push(event);
                    }
                }
            }
            // Retract a random still-future finish (as first-copy-wins and
            // CancelCopies do). The heap models the engine's historical
            // behaviour: the entry stays queued and is skipped at pop time.
            6..=7 => {
                retractable.retain(|&(slot, _)| slot > now);
                if !retractable.is_empty() {
                    let pick = rng.gen_range(0usize..retractable.len());
                    let (slot, copy) = retractable.swap_remove(pick);
                    calendar.retract(slot, copy);
                    retracted.insert(copy);
                }
            }
            // Advance to the next instant (occasionally past it) and drain.
            _ => {
                prop_assert_eq!(calendar.peek_slot(), heap.peek_slot());
                let Some(next) = calendar.peek_slot() else {
                    continue;
                };
                now = next
                    + if rng.gen_range(0u32..4) == 0 {
                        rng.gen_range(0u64..20)
                    } else {
                        0
                    };
                drained.clear();
                calendar.drain_due(now, &mut drained);
                let mut heap_live = Vec::new();
                while let Some(event) = heap.pop_due(now) {
                    let stale = matches!(event, Event::CopyFinish { copy, .. }
                        if retracted.contains(&copy.0));
                    if !stale {
                        heap_live.push(event);
                    }
                }
                prop_assert_eq!(&drained, &heap_live);
            }
        }
    }

    // Final drain: everything left must still agree.
    prop_assert_eq!(calendar.peek_slot(), heap.peek_slot());
    drained.clear();
    calendar.drain_due(u64::MAX, &mut drained);
    let mut heap_live = Vec::new();
    while let Some(event) = heap.pop_due(u64::MAX) {
        let stale = matches!(event, Event::CopyFinish { copy, .. }
            if retracted.contains(&copy.0));
        if !stale {
            heap_live.push(event);
        }
    }
    prop_assert_eq!(&drained, &heap_live);
    prop_assert!(calendar.is_empty(), "calendar not empty after full drain");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn calendar_queue_matches_heap_reference(
        seed in 0u64..1_000_000,
        ops in 50usize..400,
        ring_sel in 0usize..3,
    ) {
        // Exercise a tiny ring (constant wrap + overflow churn), a mid-size
        // one, and the engine default.
        let ring_bits = [4u8, 8, 11][ring_sel];
        drive(seed, ops, ring_bits)?;
    }
}
