//! Qualitative reproduction of the paper's headline claims at reduced scale.
//!
//! Absolute numbers differ from the paper (different trace instantiation,
//! smaller cluster), but the *shape* of every claim is asserted here:
//! SRPTMS+C beats the detection-based Mantri baseline on weighted and
//! unweighted average flowtime, helps small jobs the most, the ε sweep has an
//! interior sweet spot, and the offline algorithm respects its competitive
//! bound in the zero-variance regime.

use mapreduce_experiments::{fig1, fig4, fig6, theorem1, Scenario, SchedulerKind};

fn claim_scenario() -> Scenario {
    // A little bigger than the default test scenario so the statistical
    // effects (straggler tails) are visible, but still fast.
    Scenario::scaled(300, 2)
}

#[test]
fn srptmsc_beats_mantri_on_average_flowtime() {
    let result = fig6::run(&claim_scenario());
    let improvement = result
        .improvement_over_mantri
        .expect("Mantri is part of the line-up");
    let weighted = result
        .weighted_improvement_over_mantri
        .expect("Mantri is part of the line-up");
    assert!(
        improvement > 0.0,
        "SRPTMS+C should reduce the average flowtime vs Mantri, got {:.1} %",
        improvement * 100.0
    );
    assert!(
        weighted > 0.0,
        "SRPTMS+C should reduce the weighted average flowtime vs Mantri, got {:.1} %",
        weighted * 100.0
    );
}

#[test]
fn srptmsc_helps_small_jobs_the_most() {
    // Fig. 4's claim: within the 0–300 s window SRPTMS+C completes at least
    // as large a fraction of jobs as Mantri at every evaluated point.
    let comparison = fig4::run(&claim_scenario());
    let srptms = comparison
        .series
        .iter()
        .find(|s| s.scheduler == "SRPTMS+C")
        .expect("series present");
    let mantri = comparison
        .series
        .iter()
        .find(|s| s.scheduler == "Mantri")
        .expect("series present");
    let points_where_better = srptms
        .points
        .iter()
        .zip(&mantri.points)
        .filter(|((_, a), (_, b))| a + 1e-9 >= *b)
        .count();
    assert!(
        points_where_better * 10 >= srptms.points.len() * 7,
        "SRPTMS+C should dominate Mantri's small-job CDF on most points ({points_where_better}/{})",
        srptms.points.len()
    );
    // And at the right edge of the window it is strictly ahead.
    let last = srptms.points.len() - 1;
    assert!(srptms.points[last].1 >= mantri.points[last].1);
}

#[test]
fn epsilon_sweep_has_an_interior_optimum_region() {
    // Fig. 1's claim: pure SRPT (tiny ε) and fair sharing (ε = 1) are both
    // worse than some intermediate ε.
    let rows = fig1::run(&claim_scenario(), &[0.1, 0.4, 0.6, 0.8, 1.0]);
    let best = fig1::best_epsilon(&rows).expect("non-empty sweep");
    let first = rows.first().unwrap();
    let last = rows.last().unwrap();
    let best_row = rows.iter().find(|r| r.epsilon == best).unwrap();
    assert!(
        best_row.mean_flowtime <= first.mean_flowtime + 1e-9,
        "the best epsilon should be no worse than epsilon = 0.1"
    );
    assert!(
        best_row.mean_flowtime <= last.mean_flowtime + 1e-9,
        "the best epsilon should be no worse than epsilon = 1.0 (fair sharing)"
    );
}

#[test]
fn cloning_does_not_hurt_the_weighted_objective() {
    // The ablation version of the cloning claim: SRPTMS+C with cloning is at
    // least as good as the same scheduler with cloning disabled.
    use mapreduce_experiments::{run_scheduler_averaged, SchedulerKind as K};
    let scenario = claim_scenario();
    let with_cloning = run_scheduler_averaged(K::paper_default(), &scenario);
    let without = run_scheduler_averaged(
        K::SrptMsNoCloning {
            epsilon: 0.6,
            r: 3.0,
        },
        &scenario,
    );
    let mean = |outcomes: &[mapreduce_sim::SimOutcome]| {
        outcomes
            .iter()
            .map(|o| o.weighted_mean_flowtime())
            .sum::<f64>()
            / outcomes.len() as f64
    };
    assert!(
        mean(&with_cloning) <= mean(&without) * 1.02,
        "cloning should not make the weighted flowtime materially worse: {} vs {}",
        mean(&with_cloning),
        mean(&without)
    );
}

#[test]
fn offline_algorithm_is_near_two_competitive_at_zero_variance() {
    let result = theorem1::run(&claim_scenario(), 0.0, true);
    assert!(
        result.weighted_competitive_ratio <= 2.5,
        "zero-variance competitive ratio {} too large",
        result.weighted_competitive_ratio
    );
    assert!(result.fraction_within_bound >= 0.5);
}

#[test]
fn mantri_beats_plain_fifo_on_this_workload_family() {
    // Sanity check that the baseline itself is implemented sensibly: the
    // detection-based scheme should not lose to FIFO with no speculation on a
    // heavy-tailed workload.
    let scenario = claim_scenario();
    let trace = scenario.trace(scenario.seeds[0]);
    let mantri = mapreduce_experiments::run_scheduler(
        SchedulerKind::Mantri,
        &trace,
        scenario.machines,
        scenario.seeds[0],
    );
    let fifo = mapreduce_experiments::run_scheduler(
        SchedulerKind::Fifo,
        &trace,
        scenario.machines,
        scenario.seeds[0],
    );
    assert!(mantri.mean_flowtime() <= fifo.mean_flowtime() * 1.05);
}
