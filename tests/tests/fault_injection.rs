//! Adversarial fault-injection tests: random machine-dynamics plans against
//! the full golden scheduler line-up.
//!
//! The kill storm stresses every retraction/cancellation path at once —
//! crashes retract queued finish events, kill running and waiting clones,
//! return tasks to the unscheduled pool, and take capacity away mid-batch —
//! while the assertions pin the engine's conservation laws:
//!
//! - **completion**: every job still finishes (work is lost, jobs are not);
//! - **determinism**: a fault plan is part of the seeded configuration, so
//!   the same plan and seed reproduce the same outcome bit-for-bit;
//! - **conservation of work**: lost progress is accounted (`wasted_work ≤
//!   busy_machine_slots`) and no phantom capacity appears
//!   (`busy_machine_slots ≤ machines × makespan`);
//! - **arena recycling**: the copy arena's free list keeps the resident
//!   footprint bounded (`peak_copy_slots ≤ total_copies`) even when crashes
//!   churn copies far faster than jobs complete;
//! - **empty-plan identity**: a `FaultPlan::none()` run is bit-identical to
//!   a run with no plan at all, for every scheduler of the golden suite.

use mapreduce_baselines::{FairScheduler, Fifo, Late, Mantri, Restart, Sca};
use mapreduce_sched::SrptMsC;
use mapreduce_sim::{FaultClass, FaultPlan, Scheduler, SimConfig, SimOutcome, Simulation};
use mapreduce_support::proptest::prelude::*;
use mapreduce_workload::{ArrivalProcess, DurationDistribution, Trace, WorkloadBuilder};

/// A fresh instance of every scheduler in the golden suite.
fn golden_suite() -> Vec<Box<dyn Scheduler>> {
    vec![
        Box::new(SrptMsC::new(0.6, 3.0)),
        Box::new(Mantri::new()),
        Box::new(Late::new()),
        Box::new(Restart::new()),
        Box::new(FairScheduler::new()),
        Box::new(Fifo::new()),
        Box::new(Sca::new()),
    ]
}

/// A two-phase workload small enough that the full suite × several fault
/// plans stays fast, but heavy-tailed enough to keep clones and detection
/// paths active while machines die under them.
fn random_trace(jobs: usize, seed: u64) -> Trace {
    WorkloadBuilder::new()
        .num_jobs(jobs)
        .arrivals(ArrivalProcess::Poisson {
            mean_interarrival: 15.0,
        })
        .map_tasks_per_job(1, 5)
        .reduce_tasks_per_job(0, 2)
        .map_duration(DurationDistribution::lognormal_from_moments(40.0, 40.0).unwrap())
        .reduce_duration(DurationDistribution::lognormal_from_moments(60.0, 40.0).unwrap())
        .weights(&[1.0, 2.0, 5.0])
        .build(seed)
}

fn run_with_plan(
    scheduler: &mut dyn Scheduler,
    trace: &Trace,
    machines: usize,
    seed: u64,
    plan: FaultPlan,
) -> SimOutcome {
    let mut config = SimConfig::new(machines).with_seed(seed);
    if !plan.is_empty() {
        config = config.with_fault_plan(plan);
    }
    Simulation::new(config, trace)
        .run(scheduler)
        .expect("faulty runs must still complete every job")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The kill storm: a random crash class (optionally plus a brown-out
    /// class on the remaining machines) against every golden scheduler.
    #[test]
    fn kill_storm_preserves_conservation_laws(
        jobs in 5usize..18,
        machines in 6usize..20,
        seed in 0u64..500,
        crash_fraction in 0.3f64..1.0,
        mean_up in 300.0f64..3_000.0,
        down_fraction in 0.05f64..0.4,
        brownouts in 0u64..2,
    ) {
        let trace = random_trace(jobs, seed);
        let crashed = ((machines as f64 * crash_fraction) as usize).max(1);
        let mut classes = vec![FaultClass::crashes(
            crashed,
            mean_up,
            (mean_up * down_fraction).max(1.0),
        )];
        if brownouts == 1 && crashed < machines {
            classes.push(FaultClass::brownouts(
                machines - crashed,
                mean_up / 2.0,
                mean_up * down_fraction,
                3.0,
            ));
        }
        let plan = FaultPlan::new(classes);
        plan.validate(machines);

        for mut scheduler in golden_suite() {
            let outcome = run_with_plan(scheduler.as_mut(), &trace, machines, seed, plan.clone());
            let label = outcome.scheduler.clone();

            // Work lost, not jobs lost.
            prop_assert!(
                outcome.records().len() == jobs,
                "{}: some jobs never completed under churn", label
            );
            // Conservation of work: what the cluster was billed for is the
            // completed progress plus the wasted progress — waste can never
            // exceed the busy total, and the busy total can never exceed
            // the physical capacity of the makespan.
            prop_assert!(
                outcome.wasted_work <= outcome.busy_machine_slots,
                "{}: wasted {} > busy {}", label, outcome.wasted_work, outcome.busy_machine_slots
            );
            prop_assert!(
                outcome.busy_machine_slots <= machines as u64 * outcome.makespan,
                "{}: busy {} exceeds capacity {} × {}",
                label, outcome.busy_machine_slots, machines, outcome.makespan
            );
            // Copy-arena recycling: killed copies go back to the free list,
            // so the peak resident footprint stays below the cumulative
            // launch count even when crashes churn copies hard.
            prop_assert!(
                outcome.peak_copy_slots <= outcome.total_copies,
                "{}: peak {} resident copy slots but only {} copies ever launched",
                label, outcome.peak_copy_slots, outcome.total_copies
            );
            // Downtime accounting never exceeds what the crashed machines
            // could physically accumulate.
            prop_assert!(
                outcome.machine_downtime <= crashed as u64 * outcome.makespan,
                "{}: downtime {} exceeds {} crashed machines × makespan {}",
                label, outcome.machine_downtime, crashed, outcome.makespan
            );

            // Determinism: the fault trajectory is part of the seeded
            // configuration; a stale event-queue entry or unordered
            // iteration would diverge here.
            let mut again = golden_suite()
                .into_iter()
                .find(|s| s.name() == label)
                .expect("scheduler names are stable");
            let replay =
                run_with_plan(again.as_mut(), &trace, machines, seed, plan.clone());
            prop_assert!(
                outcome == replay,
                "{}: same plan and seed produced diverging outcomes", label
            );
        }
    }

    /// The tentpole invariant: an empty fault plan is indistinguishable —
    /// bit-for-bit, not just statistically — from no plan at all, for every
    /// golden scheduler.
    #[test]
    fn empty_fault_plan_is_bit_identical_across_golden_suite(
        jobs in 5usize..20,
        machines in 4usize..24,
        seed in 0u64..500,
    ) {
        let trace = random_trace(jobs, seed);
        for (mut with_empty, mut without) in golden_suite().into_iter().zip(golden_suite()) {
            let label = with_empty.name().to_string();
            let a = run_with_plan(
                with_empty.as_mut(), &trace, machines, seed, FaultPlan::none(),
            );
            let b = run_with_plan(without.as_mut(), &trace, machines, seed, FaultPlan::new(vec![]));
            prop_assert!(
                a == b,
                "{}: an empty FaultPlan changed the trajectory", label
            );
        }
    }
}

/// High-churn acceptance test at scale: 100 000 jobs on a large cluster
/// where every machine crashes repeatedly. Run with
/// `cargo test -p mapreduce-tests --release -- --ignored high_churn`.
#[test]
#[ignore = "multi-minute acceptance run; exercised explicitly, not in CI"]
fn high_churn_100k_jobs_complete_with_bounded_arena() {
    let trace = WorkloadBuilder::new()
        .num_jobs(100_000)
        .arrivals(ArrivalProcess::Poisson {
            mean_interarrival: 0.4,
        })
        .map_tasks_per_job(1, 4)
        .reduce_tasks_per_job(0, 1)
        .map_duration(DurationDistribution::lognormal_from_moments(30.0, 25.0).unwrap())
        .reduce_duration(DurationDistribution::lognormal_from_moments(45.0, 30.0).unwrap())
        .weights(&[1.0, 4.0])
        .build(7);
    let machines = 400;
    let plan = FaultPlan::new(vec![FaultClass::crashes(machines, 5_000.0, 500.0)]);
    let config = SimConfig::new(machines).with_seed(7).with_fault_plan(plan);
    let outcome = Simulation::new(config, &trace)
        .run(&mut SrptMsC::new(0.6, 3.0))
        .expect("high-churn run completes");
    assert_eq!(outcome.records().len(), 100_000);
    assert!(outcome.copies_killed_by_fault > 0);
    assert!(outcome.wasted_work <= outcome.busy_machine_slots);
    // The arena must recycle aggressively: the peak resident footprint is a
    // tiny fraction of the hundreds of thousands of copies launched.
    assert!(outcome.peak_copy_slots < outcome.total_copies / 10);
}
