//! Streaming-workload equivalence tests.
//!
//! The contract of the streaming subsystem is that *how* a workload reaches
//! the engine must not change what happens: feeding jobs lazily through a
//! [`StreamingGenerator`] (pull-ahead admission, per-job RNG streams, job
//! storage released at completion) must produce a **bit-identical**
//! [`SimOutcome`] to materialising the equivalent [`Trace`] up front and
//! running it through the classic trace path — for every scheduler of the
//! golden suite, over randomized profiles, seeds and cluster sizes.

use mapreduce_baselines::{FairScheduler, Fifo, Late, Mantri, Restart, Sca};
use mapreduce_sched::SrptMsC;
use mapreduce_sim::{Scheduler, SimConfig, SimOutcome, Simulation};
use mapreduce_support::proptest::prelude::*;
use mapreduce_workload::{GoogleTraceProfile, JobSource, MaterializedSource, StreamingGenerator};

/// The golden-suite scheduler line-up (fresh instances — schedulers are
/// stateful and never shared across runs).
fn golden_suite() -> Vec<Box<dyn Scheduler>> {
    vec![
        Box::new(SrptMsC::new(0.6, 3.0)),
        Box::new(Mantri::new()),
        Box::new(Late::new()),
        Box::new(Restart::new()),
        Box::new(FairScheduler::new()),
        Box::new(Fifo::new()),
        Box::new(Sca::new()),
    ]
}

fn run_from_source(
    scheduler: &mut dyn Scheduler,
    source: Box<dyn JobSource>,
    machines: usize,
    seed: u64,
) -> SimOutcome {
    Simulation::from_source(SimConfig::new(machines).with_seed(seed), source)
        .run(scheduler)
        .expect("simulation must complete")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Streaming feed vs materialized twin, bit-identical for every golden
    /// scheduler — the acceptance property of the streaming subsystem.
    #[test]
    fn streaming_and_materialized_outcomes_are_bit_identical(
        jobs in 8usize..40,
        machines in 4usize..64,
        seed in 0u64..1000,
    ) {
        let profile = GoogleTraceProfile::scaled(jobs);
        let stream = StreamingGenerator::new(profile, seed);
        let trace = stream.materialize();
        for (streaming_side, trace_side) in golden_suite().iter_mut().zip(golden_suite().iter_mut()) {
            let a = run_from_source(
                streaming_side.as_mut(),
                Box::new(stream.clone()),
                machines,
                seed,
            );
            // The classic path: whole trace up front through Simulation::new.
            let b = Simulation::new(SimConfig::new(machines).with_seed(seed), &trace)
                .run(trace_side.as_mut())
                .expect("materialized run must complete");
            prop_assert_eq!(&a.scheduler, &b.scheduler);
            prop_assert!(
                a == b,
                "{}: streaming and materialized outcomes diverge (jobs {jobs}, machines \
                 {machines}, seed {seed}): mean flowtime {} vs {}, copies {} vs {}, makespan {} \
                 vs {}, peak resident {} vs {}",
                a.scheduler,
                a.mean_flowtime(),
                b.mean_flowtime(),
                a.total_copies,
                b.total_copies,
                a.makespan,
                b.makespan,
                a.peak_resident_jobs,
                b.peak_resident_jobs
            );
        }
    }

    /// Pipelined engine vs serial oracle, bit-identical for every golden
    /// scheduler: moving the source pull onto a producer thread and the
    /// record fold onto a consumer thread is an execution strategy, not a
    /// semantic change.
    #[test]
    fn pipelined_and_serial_outcomes_are_bit_identical(
        jobs in 8usize..40,
        machines in 4usize..64,
        seed in 0u64..1000,
    ) {
        let profile = GoogleTraceProfile::scaled(jobs);
        let stream = StreamingGenerator::new(profile, seed);
        for (serial_side, piped_side) in golden_suite().iter_mut().zip(golden_suite().iter_mut()) {
            let serial = run_from_source(
                serial_side.as_mut(),
                Box::new(stream.clone()),
                machines,
                seed,
            );
            let piped = Simulation::from_source(
                SimConfig::new(machines).with_seed(seed).with_pipeline(true),
                Box::new(stream.clone()),
            )
            .run(piped_side.as_mut())
            .expect("pipelined run must complete");
            prop_assert!(
                serial == piped,
                "{}: pipelined and serial outcomes diverge (jobs {jobs}, machines {machines}, \
                 seed {seed}): mean flowtime {} vs {}, copies {} vs {}",
                serial.scheduler,
                serial.mean_flowtime(),
                piped.mean_flowtime(),
                serial.total_copies,
                piped.total_copies
            );
        }
    }

    /// A MaterializedSource feed is equivalent to handing the trace over
    /// directly — the adapter introduces nothing of its own.
    #[test]
    fn materialized_source_matches_direct_trace(
        jobs in 8usize..40,
        machines in 4usize..48,
        seed in 0u64..1000,
    ) {
        let trace = GoogleTraceProfile::scaled(jobs).generate(seed);
        let a = run_from_source(
            &mut SrptMsC::new(0.6, 3.0),
            Box::new(MaterializedSource::from_trace(&trace)),
            machines,
            seed,
        );
        let b = Simulation::new(SimConfig::new(machines).with_seed(seed), &trace)
            .run(&mut SrptMsC::new(0.6, 3.0))
            .expect("materialized run must complete");
        prop_assert!(a == b, "adapter changed the outcome (seed {seed})");
    }
}

/// Streaming keeps the alive window, not the workload: at a scale where the
/// whole trace would be thousands of jobs, the peak resident count stays a
/// small fraction (jobs are admitted on arrival and released on completion).
#[test]
fn streaming_peak_residency_is_a_fraction_of_the_workload() {
    let profile = GoogleTraceProfile::scaled(2_000);
    let stream = StreamingGenerator::new(profile, 1);
    let total = stream.total_jobs();
    let outcome = run_from_source(&mut Fifo::new(), Box::new(stream), 4_000, 1);
    assert_eq!(outcome.records().len(), total);
    assert!(outcome.peak_resident_jobs >= 1);
    assert!(
        outcome.peak_resident_jobs < total / 2,
        "peak resident {} should be well below the {total}-job workload",
        outcome.peak_resident_jobs
    );
    // The copy arena recycles released slots, so its footprint tracks the
    // alive window too instead of the run's total copy count.
    assert!(outcome.peak_copy_slots >= 1);
    assert!(
        outcome.peak_copy_slots < outcome.total_copies / 2,
        "peak copy slots {} should be well below the {} copies launched",
        outcome.peak_copy_slots,
        outcome.total_copies
    );
}

/// The 100k-job fullscale acceptance run (slow: run explicitly with
/// `cargo test -p integration-tests --test streaming_equivalence -- --ignored`;
/// the `workload_stream` bench exercises the same regime in release mode on
/// every CI run).
/// The million-job acceptance run: 1M jobs streamed onto 100k machines
/// complete under FIFO in bounded memory. Debug-mode cost is tens of
/// minutes, so the test stays `#[ignore]`d here; CI covers the same regime
/// in release mode through the `stream1m` bench
/// (`MAPREDUCE_BENCH_SAMPLES=1 cargo bench -p mapreduce-bench --bench
/// stream1m`), which also runs SRPTMS+C over it.
#[test]
#[ignore = "million-job run; covered in release mode by the stream1m bench"]
fn streaming_million_jobs_completes_in_bounded_memory() {
    let scenario = mapreduce_experiments::Scenario::million();
    let seed = scenario.seeds[0];
    let outcome = run_from_source(
        &mut Fifo::new(),
        scenario.job_source(seed),
        scenario.machines,
        seed,
    );
    assert_eq!(outcome.records().len(), 1_000_000);
    // The alive window is what occupies memory, not the million-job
    // workload: the stretched arrival window keeps the paper's offered
    // load, so residency stays a small multiple of the 100k-job tier's.
    assert!(
        outcome.peak_resident_jobs < 100_000,
        "peak resident {} is not bounded",
        outcome.peak_resident_jobs
    );
    assert!(
        outcome.peak_copy_slots < outcome.total_copies / 4,
        "peak copy slots {} vs {} total copies",
        outcome.peak_copy_slots,
        outcome.total_copies
    );
}

/// The ten-million-job acceptance run: the `stream10m` tier completes under
/// FIFO with the alive window — not the workload — occupying memory. Debug
/// mode makes this hours of wall clock, so it stays `#[ignore]`d; run it
/// explicitly in release
/// (`cargo test -p integration-tests --test streaming_equivalence --release
/// -- --ignored streaming_ten_million`), or measure the same regime through
/// the `stream10m` bench, which also runs SRPTMS+C over it.
#[test]
#[ignore = "ten-million-job run; covered in release mode by the stream10m bench"]
fn streaming_ten_million_jobs_completes_in_bounded_memory() {
    let scenario = mapreduce_experiments::Scenario::ten_million();
    let seed = scenario.seeds[0];
    let outcome = run_from_source(
        &mut Fifo::new(),
        scenario.job_source(seed),
        scenario.machines,
        seed,
    );
    assert_eq!(outcome.records().len(), 10_000_000);
    // Residency follows Little's law (arrival rate × flowtime): FIFO's
    // flowtime grows with scale, so the alive window does too — measured
    // 205 847 peak resident at this tier — but it stays two orders of
    // magnitude below the job count. The counter is deterministic, so the
    // 2× headroom here is real margin, not noise allowance.
    assert!(
        outcome.peak_resident_jobs < 400_000,
        "peak resident {} is not bounded",
        outcome.peak_resident_jobs
    );
    assert!(
        outcome.peak_copy_slots < outcome.total_copies / 4,
        "peak copy slots {} vs {} total copies",
        outcome.peak_copy_slots,
        outcome.total_copies
    );
}

#[test]
#[ignore = "fullscale 100k-job run; covered in release mode by the workload_stream bench"]
fn streaming_100k_jobs_completes_in_bounded_memory() {
    let scenario = mapreduce_experiments::Scenario::streaming(100_000, 1);
    let seed = scenario.seeds[0];
    let outcome = run_from_source(
        &mut Fifo::new(),
        scenario.job_source(seed),
        scenario.machines,
        seed,
    );
    assert_eq!(outcome.records().len(), 100_000);
    assert!(outcome.peak_resident_jobs < 20_000);
    // Copy-slot memory is bounded by the alive window, not the ~2.6M copies
    // a 100k-job run launches: the free-list keeps the slot table at the
    // peak alive width.
    assert!(
        outcome.peak_copy_slots < outcome.total_copies / 4,
        "peak copy slots {} vs {} total copies",
        outcome.peak_copy_slots,
        outcome.total_copies
    );
}
