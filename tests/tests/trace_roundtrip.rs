//! Trace serialization round-trips and replay equivalence across crates.

use integration_tests::helpers::test_trace;
use mapreduce_experiments::{run_scheduler, SchedulerKind};
use mapreduce_support::json::{FromJson, JsonValue, ToJson};
use mapreduce_workload::Trace;

#[test]
fn json_roundtrip_preserves_the_trace_and_the_simulation() {
    let trace = test_trace(4);
    let mut buffer = Vec::new();
    trace.to_writer(&mut buffer).expect("serialize");
    let reloaded = Trace::from_reader(buffer.as_slice()).expect("deserialize");
    assert_eq!(reloaded, trace);

    // Replaying the reloaded trace gives bit-identical results.
    let machines = 300;
    let a = run_scheduler(SchedulerKind::paper_default(), &trace, machines, 4);
    let b = run_scheduler(SchedulerKind::paper_default(), &reloaded, machines, 4);
    assert_eq!(a, b);
}

#[test]
fn trace_statistics_survive_the_roundtrip() {
    let trace = test_trace(8);
    let stats_before = trace.stats();
    let json = trace.to_json().to_compact_string();
    let reloaded = Trace::from_json(&JsonValue::parse(&json).expect("parse")).expect("decode");
    assert_eq!(reloaded.stats(), stats_before);
}

#[test]
fn bulk_arrival_conversion_only_changes_arrivals() {
    let trace = test_trace(2);
    let bulk = trace.as_bulk_arrival();
    assert_eq!(bulk.len(), trace.len());
    assert!(bulk.iter().all(|j| j.arrival == 0));
    assert_eq!(bulk.total_tasks(), trace.total_tasks());
    let stats = bulk.stats();
    assert_eq!(stats.duration, 0);
    assert_eq!(stats.total_tasks, trace.stats().total_tasks);
}
