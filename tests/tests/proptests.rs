//! Cross-crate property-based tests: for randomly generated workloads and
//! cluster sizes, every scheduler preserves the simulator's structural
//! invariants and the headline metrics are internally consistent.

use integration_tests::helpers::assert_outcome_invariants;
use mapreduce_experiments::{run_scheduler, SchedulerKind};
use mapreduce_support::proptest::prelude::*;
use mapreduce_workload::{ArrivalProcess, DurationDistribution, WorkloadBuilder};

fn random_trace(
    jobs: usize,
    seed: u64,
    mean_interarrival: f64,
    map_mean: f64,
) -> mapreduce_workload::Trace {
    WorkloadBuilder::new()
        .num_jobs(jobs)
        .arrivals(ArrivalProcess::Poisson { mean_interarrival })
        .map_tasks_per_job(1, 6)
        .reduce_tasks_per_job(0, 2)
        .map_duration(DurationDistribution::lognormal_from_moments(map_mean, map_mean).unwrap())
        .reduce_duration(
            DurationDistribution::lognormal_from_moments(map_mean * 1.5, map_mean).unwrap(),
        )
        .weights(&[1.0, 2.0, 5.0, 12.0])
        .build(seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn prop_srptmsc_preserves_invariants(
        jobs in 5usize..40,
        machines in 4usize..64,
        seed in 0u64..1000,
        interarrival in 1.0f64..60.0,
        map_mean in 10.0f64..200.0,
    ) {
        let trace = random_trace(jobs, seed, interarrival, map_mean);
        let outcome = run_scheduler(SchedulerKind::paper_default(), &trace, machines, seed);
        assert_outcome_invariants(&outcome, &trace);
        // Weighted metrics are consistent with the records.
        let manual: f64 = outcome
            .records()
            .iter()
            .map(|r| r.weighted_flowtime())
            .sum();
        prop_assert!((manual - outcome.weighted_sum_flowtime()).abs() < 1e-6);
    }

    #[test]
    fn prop_baselines_preserve_invariants(
        jobs in 5usize..30,
        machines in 4usize..48,
        seed in 0u64..1000,
    ) {
        let trace = random_trace(jobs, seed, 20.0, 60.0);
        for kind in [SchedulerKind::Mantri, SchedulerKind::Sca, SchedulerKind::Fair] {
            let outcome = run_scheduler(kind, &trace, machines, seed);
            assert_outcome_invariants(&outcome, &trace);
        }
    }

    #[test]
    fn prop_flowtime_never_below_critical_path(
        jobs in 3usize..15,
        seed in 0u64..500,
    ) {
        // Every job needs at least its longest map task plus (if present) its
        // longest reduce task... no: at least the longest single task — use
        // that weaker, always-true bound. Cloning can only shorten a task to
        // the minimum over resampled copies, never below one slot, so we
        // check the one-slot-per-task floor and the arrival floor only.
        let trace = random_trace(jobs, seed, 10.0, 50.0);
        let machines = 64;
        let outcome = run_scheduler(SchedulerKind::paper_default(), &trace, machines, seed);
        for record in outcome.records() {
            // A job with a reduce phase needs at least 2 slots (1 map + 1 reduce).
            let floor = if record.num_reduce_tasks > 0 { 2 } else { 1 };
            prop_assert!(record.flowtime() >= floor);
        }
    }

    #[test]
    fn prop_more_machines_never_hurt_fair_scheduling(
        jobs in 5usize..25,
        seed in 0u64..500,
        machines in 4usize..32,
    ) {
        let trace = random_trace(jobs, seed, 15.0, 40.0);
        let small = run_scheduler(SchedulerKind::Fair, &trace, machines, seed);
        let large = run_scheduler(SchedulerKind::Fair, &trace, machines * 4, seed);
        prop_assert!(large.mean_flowtime() <= small.mean_flowtime() + 1e-9);
    }
}
