//! Acceptance tests of the experiment service: cache correctness, recovery
//! and warm-sweep behaviour.
//!
//! The contract of the content-addressed result cache is that *where* a
//! cell's outcome comes from must not change what it is: a cache hit — in
//! memory, from a reloaded JSON-lines file, or deduplicated in-flight —
//! must be **bit-identical** to a fresh recompute, across the golden
//! scheduler suite. And the failure modes of a persistent store (corrupt
//! lines, eviction) must degrade to recomputation, never to a panic or a
//! wrong result.

use mapreduce_experiments::cache::OutcomeCache;
use mapreduce_experiments::{
    clear_global_cache, fig1, fig4, fig5, install_global_cache, run_cell, MemoryCache, Scenario,
    SchedulerKind,
};
use mapreduce_metrics::FlowtimeSummary;
use mapreduce_server::{ResultCache, SweepRequest, SweepServer};
use mapreduce_support::proptest::prelude::*;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

/// The golden-suite line-up of the scheduler registry (every kind the
/// experiment harness sweeps in the figures).
fn golden_kinds() -> Vec<SchedulerKind> {
    vec![
        SchedulerKind::paper_default(),
        SchedulerKind::Mantri,
        SchedulerKind::Late,
        SchedulerKind::Fair,
        SchedulerKind::Fifo,
        SchedulerKind::Sca,
    ]
}

fn temp_cache_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "mapreduce_server_cache_{tag}_{}.jsonl",
        std::process::id()
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Warm sweeps simulate nothing and reproduce cold results bit for bit,
    /// and every cached outcome equals a from-scratch recompute of its cell
    /// — the acceptance property of the result cache.
    #[test]
    fn cache_hits_are_bit_identical_to_fresh_recomputes(
        jobs in 8usize..28,
        machines in 4usize..48,
        num_seeds in 1usize..3,
        seed0 in 0u64..1000,
    ) {
        let mut scenario = Scenario::scaled(jobs, num_seeds);
        scenario.machines = machines;
        scenario.seeds = (0..num_seeds as u64).map(|i| seed0 + i).collect();
        let request = SweepRequest::new(scenario.clone(), golden_kinds());

        let server = SweepServer::new(ResultCache::in_memory());
        let cold = server.submit(&request);
        prop_assert_eq!(cold.cache_hits, 0);
        prop_assert_eq!(cold.simulated, request.num_cells());
        prop_assert_eq!(cold.cells.len(), request.num_cells());

        // Warm rerun: zero simulations, every cell a hit, identical rows.
        let warm = server.submit(&request);
        prop_assert_eq!(warm.simulated, 0);
        prop_assert_eq!(warm.cache_misses, 0);
        prop_assert_eq!(warm.cache_hits, request.num_cells());
        prop_assert_eq!(&warm.averages, &cold.averages);
        for (w, c) in warm.cells.iter().zip(&cold.cells) {
            prop_assert!(w.from_cache);
            prop_assert_eq!(&w.summary, &c.summary);
            prop_assert_eq!(w.fingerprint, c.fingerprint);
        }

        // Ground truth: each cached outcome is bit-identical to an
        // independent recompute of the cell.
        for cell in &cold.cells {
            let fresh = run_cell(cell.scheduler, &scenario, cell.seed);
            let cached = server
                .cache()
                .lookup(cell.fingerprint)
                .expect("cell cached after cold run");
            prop_assert!(
                cached == fresh,
                "{} seed {} diverged from recompute",
                cell.summary.scheduler,
                cell.seed
            );
            prop_assert_eq!(&FlowtimeSummary::from_outcome(&fresh), &cell.summary);
        }
    }
}

/// Persistence: a cache file written by one server serves a fresh server
/// warm; corrupting a stored line degrades that cell to recomputation — no
/// panic, same results.
#[test]
fn persistent_cache_survives_reopen_and_recovers_from_corruption() {
    let path = temp_cache_path("reopen");
    let _ = std::fs::remove_file(&path);
    let scenario = Scenario::scaled(20, 2);
    let request = SweepRequest::new(
        scenario,
        vec![SchedulerKind::Fifo, SchedulerKind::paper_default()],
    );

    let cold = {
        let server = SweepServer::new(ResultCache::open(&path).unwrap());
        server.submit(&request)
    };
    assert_eq!(cold.simulated, 4);

    // A fresh process (new server, same file) is fully warm.
    {
        let server = SweepServer::new(ResultCache::open(&path).unwrap());
        assert_eq!(server.cache().skipped_lines(), 0);
        let warm = server.submit(&request);
        assert_eq!(warm.simulated, 0);
        assert_eq!(warm.cache_hits, request.num_cells());
        assert_eq!(warm.averages, cold.averages);
    }

    // Corrupt the first stored line: that cell (and only that cell) is
    // recomputed; the results still match the cold run bit for bit.
    let text = std::fs::read_to_string(&path).unwrap();
    let mut lines: Vec<&str> = text.lines().collect();
    let truncated = &lines[0][..lines[0].len() / 2];
    lines[0] = truncated;
    std::fs::write(&path, lines.join("\n")).unwrap();

    let server = SweepServer::new(ResultCache::open(&path).unwrap());
    assert_eq!(server.cache().skipped_lines(), 1);
    let recovered = server.submit(&request);
    assert_eq!(recovered.simulated, 1, "only the damaged cell recomputes");
    assert_eq!(recovered.cache_hits, request.num_cells() - 1);
    assert_eq!(recovered.averages, cold.averages);
    for (r, c) in recovered.cells.iter().zip(&cold.cells) {
        assert_eq!(r.summary, c.summary);
    }
    let _ = std::fs::remove_file(&path);
}

/// Eviction under a capacity cap is a cold cell, not an error: the evicted
/// cell recomputes to the identical result.
#[test]
fn evicted_entries_recompute_identically() {
    let scenario = Scenario::scaled(15, 1);
    let request = SweepRequest::new(scenario, vec![SchedulerKind::Fifo, SchedulerKind::Mantri]);
    let server = SweepServer::new(ResultCache::in_memory().with_max_entries(1));
    let cold = server.submit(&request);
    assert_eq!(cold.simulated, 2);
    assert_eq!(server.cache().len(), 1, "cap holds one entry");
    assert_eq!(server.cache().evicted(), 1);

    // Rerun: one cell hits (the survivor), the evicted one recomputes —
    // with identical results.
    let rerun = server.submit(&request);
    assert_eq!(rerun.cache_hits, 1);
    assert_eq!(rerun.simulated, 1);
    assert_eq!(rerun.averages, cold.averages);
}

/// Cells sharing a fingerprint within one request are simulated once.
#[test]
fn in_flight_duplicates_are_deduplicated() {
    let scenario = Scenario::scaled(15, 1);
    let request = SweepRequest::new(scenario, vec![SchedulerKind::Fifo, SchedulerKind::Fifo]);
    let server = SweepServer::new(ResultCache::in_memory());
    let response = server.submit(&request);
    assert_eq!(response.cells.len(), 2);
    assert_eq!(response.simulated, 1);
    assert_eq!(response.deduped_in_flight, 1);
    assert_eq!(response.cache_misses, 2);
    assert_eq!(response.cells[0].summary, response.cells[1].summary);
    assert_eq!(response.cells[0].fingerprint, response.cells[1].fingerprint);
}

/// Serialises the tests that install a process-global cache (the hook is
/// process-wide state).
static GLOBAL_CACHE_LOCK: Mutex<()> = Mutex::new(());

/// Restores the previous global cache even if the test panics.
struct GlobalCacheGuard(Option<Arc<dyn OutcomeCache>>);

impl GlobalCacheGuard {
    fn install(cache: Arc<dyn OutcomeCache>) -> Self {
        GlobalCacheGuard(install_global_cache(cache))
    }
}

impl Drop for GlobalCacheGuard {
    fn drop(&mut self) {
        clear_global_cache();
        if let Some(previous) = self.0.take() {
            install_global_cache(previous);
        }
    }
}

/// The tentpole acceptance at the figure level: with a cache installed, a
/// second run of a figure sweep performs zero cell simulations and renders
/// identical rows.
#[test]
fn warm_figure_rerun_simulates_nothing() {
    let _serial = GLOBAL_CACHE_LOCK.lock().unwrap();
    // An unusual machine count keeps these fingerprints disjoint from any
    // other test traffic in this process.
    let scenario = Scenario::scaled(18, 2).with_machines(23);
    let cache = Arc::new(MemoryCache::new());
    let _guard = GlobalCacheGuard::install(cache.clone());

    let epsilons = [0.3, 0.6, 0.9];
    let cold = fig1::run(&scenario, &epsilons);
    let after_cold = cache.stats();
    let cells = epsilons.len() * scenario.seeds.len();
    assert_eq!(after_cold.misses, cells as u64);
    assert_eq!(after_cold.stores, cells as u64);
    assert_eq!(after_cold.hits, 0);

    let warm = fig1::run(&scenario, &epsilons);
    let after_warm = cache.stats();
    assert_eq!(warm, cold, "warm figure rows must be bit-identical");
    assert_eq!(
        after_warm.misses, after_cold.misses,
        "warm rerun must not simulate any cell"
    );
    assert_eq!(after_warm.hits, cells as u64);
}

/// Figures that share cells reuse each other's work: Fig. 5 runs the exact
/// sweep Fig. 4 ran (only the flowtime bucket differs), so after Fig. 4 the
/// whole Fig. 5 sweep is cache hits.
#[test]
fn fig5_reuses_fig4_cells_through_the_cache() {
    let _serial = GLOBAL_CACHE_LOCK.lock().unwrap();
    let scenario = Scenario::scaled(16, 1).with_machines(29);
    let cache = Arc::new(MemoryCache::new());
    let _guard = GlobalCacheGuard::install(cache.clone());

    let _fig4 = fig4::run(&scenario);
    let after_fig4 = cache.stats();
    assert!(after_fig4.misses > 0);

    let _fig5 = fig5::run(&scenario);
    let after_fig5 = cache.stats();
    assert_eq!(
        after_fig5.misses, after_fig4.misses,
        "fig5 must not simulate beyond fig4's cells"
    );
    assert!(after_fig5.hits > after_fig4.hits);
}
