//! Fixture test for the Google `task_events` CSV converter: the checked-in
//! sample CSV must convert to exactly the checked-in expected trace JSON.
//!
//! The sample (`tests/fixtures/google_task_events_sample.csv`) exercises the
//! interesting row patterns: multiple finished tasks per job, an
//! evict-and-reschedule (duration counts from the second SCHEDULE), a killed
//! task (dropped), a fully-dropped job, arrival normalisation against the
//! earliest SUBMIT, and the priority→weight mapping.

use mapreduce_sim::{SimConfig, Simulation};
use mapreduce_workload::{
    google_csv::parse_task_events, GoogleCsvOptions, GoogleTraceSource, JobSource, Phase, Trace,
};
use std::io::BufReader;
use std::path::{Path, PathBuf};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join(format!("fixtures/{name}"))
}

#[test]
fn sample_csv_converts_to_the_expected_trace() {
    let csv = std::fs::File::open(fixture("google_task_events_sample.csv")).unwrap();
    let converted = parse_task_events(BufReader::new(csv), &GoogleCsvOptions::default()).unwrap();
    let expected = Trace::load_from_file(fixture("google_sample_trace.json")).unwrap();
    assert_eq!(
        converted, expected,
        "converter drifted from the checked-in fixture"
    );

    // Spot-check the semantics the fixture encodes, independent of the JSON:
    // job 0 is the earliest submitter (arrival 0, priority 0 → weight 1) with
    // a 90 s task (timed from its re-schedule) and a 120 s task; job 1
    // arrived 2 s later with priority 9 → weight 10 and durations 10..50 s
    // split 4 map / 1 reduce by the 0.7 map fraction. The killed-only job is
    // dropped.
    assert_eq!(converted.len(), 2);
    let j0 = &converted.jobs()[0];
    assert_eq!((j0.arrival, j0.weight), (0, 1.0));
    assert_eq!(j0.tasks(Phase::Map)[0].workload, 90.0);
    assert_eq!(j0.tasks(Phase::Reduce)[0].workload, 120.0);
    let j1 = &converted.jobs()[1];
    assert_eq!((j1.arrival, j1.weight), (2, 10.0));
    assert_eq!(j1.num_map_tasks(), 4);
    assert_eq!(j1.num_reduce_tasks(), 1);
    let durations: Vec<f64> = j1
        .tasks(Phase::Map)
        .iter()
        .chain(j1.tasks(Phase::Reduce))
        .map(|t| t.workload)
        .collect();
    assert_eq!(durations, vec![10.0, 20.0, 30.0, 40.0, 50.0]);
}

#[test]
fn converted_source_drives_a_simulation() {
    let mut source = GoogleTraceSource::from_csv_file(fixture("google_task_events_sample.csv"), &{
        GoogleCsvOptions::default()
    })
    .unwrap();
    assert_eq!(source.total_jobs(), 2);
    assert_eq!(source.name(), "google-csv");
    let outcome = Simulation::from_source(SimConfig::new(8).with_seed(1), Box::new(source.clone()))
        .run(&mut mapreduce_baselines::Fifo::new())
        .unwrap();
    assert_eq!(outcome.records().len(), 2);
    // The converted trace is also reachable directly and matches the stream.
    let first_from_stream = source.next_job().unwrap();
    assert_eq!(&first_from_stream, &source.trace().jobs()[0]);
}
