//! End-to-end smoke tests: every scheduler in the workspace completes the
//! Google-like workload on the simulator, satisfies the structural
//! invariants, and is deterministic.

use integration_tests::helpers::{
    all_scheduler_kinds, assert_outcome_invariants, run_on_test_trace, test_scenario,
};
use mapreduce_experiments::run_scheduler;

#[test]
fn every_scheduler_completes_the_google_like_workload() {
    let scenario = test_scenario();
    let trace = scenario.trace(1);
    for kind in all_scheduler_kinds() {
        let outcome = run_scheduler(kind, &trace, scenario.machines, 1);
        assert_outcome_invariants(&outcome, &trace);
    }
}

#[test]
fn schedulers_are_deterministic_given_the_seed() {
    for kind in all_scheduler_kinds() {
        let a = run_on_test_trace(kind, 3);
        let b = run_on_test_trace(kind, 3);
        assert_eq!(a, b, "{} is not deterministic", kind.label());
    }
}

#[test]
fn cloning_schedulers_actually_clone_and_non_cloning_ones_do_not() {
    use mapreduce_experiments::SchedulerKind;
    let with_clones = run_on_test_trace(SchedulerKind::paper_default(), 5);
    assert!(
        with_clones.mean_copies_per_task() > 1.0,
        "SRPTMS+C should launch clones on a half-loaded cluster"
    );
    for kind in [
        SchedulerKind::Fair,
        SchedulerKind::Fifo,
        SchedulerKind::SrptNoClone { r: 3.0 },
        SchedulerKind::OfflineSrpt { r: 0.0 },
        SchedulerKind::SrptMsNoCloning {
            epsilon: 0.6,
            r: 3.0,
        },
    ] {
        let outcome = run_on_test_trace(kind, 5);
        assert!(
            (outcome.mean_copies_per_task() - 1.0).abs() < 1e-9,
            "{} must not clone",
            kind.label()
        );
    }
}

#[test]
fn different_machine_speeds_preserve_ordering_of_work() {
    // Resource augmentation: the same scheduler on (1+eps)-speed machines
    // must not be slower (this is the premise of the Theorem-2 analysis).
    use mapreduce_sched::SrptMsC;
    use mapreduce_sim::{SimConfig, Simulation};
    let scenario = test_scenario();
    let trace = scenario.trace(9);
    let unit = Simulation::new(SimConfig::new(scenario.machines).with_seed(9), &trace)
        .run(&mut SrptMsC::new(0.6, 3.0))
        .unwrap();
    let augmented = Simulation::new(
        SimConfig::new(scenario.machines)
            .with_seed(9)
            .with_machine_speed(1.5),
        &trace,
    )
    .run(&mut SrptMsC::new(0.6, 3.0))
    .unwrap();
    assert!(augmented.mean_flowtime() <= unit.mean_flowtime());
    assert!(augmented.weighted_mean_flowtime() <= unit.weighted_mean_flowtime());
}
