//! Shared helpers for the cross-crate integration tests.
//!
//! The actual tests live in `tests/tests/*.rs`; this library crate only holds
//! small utilities (scaled-down trace profiles, scheduler line-ups) that
//! several integration tests reuse.

pub mod helpers;
