//! Shared helpers for the cross-crate integration tests.

use mapreduce_experiments::{run_scheduler, Scenario, SchedulerKind};
use mapreduce_sim::SimOutcome;
use mapreduce_workload::Trace;

/// The scenario used by most integration tests: small enough to run in a few
/// hundred milliseconds, large enough that scheduling decisions matter.
pub fn test_scenario() -> Scenario {
    Scenario::test()
}

/// Generates the test trace for a seed.
pub fn test_trace(seed: u64) -> Trace {
    test_scenario().trace(seed)
}

/// Runs one scheduler on the shared test trace.
pub fn run_on_test_trace(kind: SchedulerKind, seed: u64) -> SimOutcome {
    let scenario = test_scenario();
    let trace = scenario.trace(seed);
    run_scheduler(kind, &trace, scenario.machines, seed)
}

/// Every scheduler kind the harness knows about, for exhaustive smoke tests.
pub fn all_scheduler_kinds() -> Vec<SchedulerKind> {
    vec![
        SchedulerKind::SrptMsC {
            epsilon: 0.6,
            r: 3.0,
        },
        SchedulerKind::SrptMsNoCloning {
            epsilon: 0.6,
            r: 3.0,
        },
        SchedulerKind::OfflineSrpt { r: 0.0 },
        SchedulerKind::Mantri,
        SchedulerKind::Sca,
        SchedulerKind::Fair,
        SchedulerKind::Fifo,
        SchedulerKind::SrptNoClone { r: 3.0 },
        SchedulerKind::Late,
    ]
}

/// Asserts the structural invariants every simulation outcome must satisfy,
/// regardless of the scheduler: every job completed after it arrived, the
/// cluster never ran more copies than machines, and at least one copy was
/// launched per task.
pub fn assert_outcome_invariants(outcome: &SimOutcome, trace: &Trace) {
    assert_eq!(
        outcome.records().len(),
        trace.len(),
        "every job must have a completion record"
    );
    for record in outcome.records() {
        assert!(
            record.completion >= record.arrival,
            "job {} completed before it arrived",
            record.job
        );
        assert!(
            record.copies_launched >= record.num_tasks(),
            "job {} finished with fewer copies than tasks",
            record.job
        );
    }
    assert!(
        outcome.busy_machine_slots <= outcome.num_machines as u64 * outcome.makespan.max(1),
        "machine-slot accounting exceeded cluster capacity"
    );
    assert!(outcome.utilization() <= 1.0 + 1e-9);
    assert!(outcome.mean_copies_per_task() >= 1.0 - 1e-9);
}
